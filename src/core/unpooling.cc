#include "core/unpooling.h"

#include "autograd/sparse_ops.h"
#include "util/logging.h"

namespace adamgnn::core {

autograd::Variable Unpool(const std::vector<Assignment>& assignments,
                          size_t level, const autograd::Variable& h) {
  ADAMGNN_CHECK_GE(level, 1u);
  ADAMGNN_CHECK_LE(level, assignments.size());
  autograd::Variable out = h;
  for (size_t k = level; k >= 1; --k) {
    const Assignment& asg = assignments[k - 1];
    ADAMGNN_CHECK_EQ(asg.pattern->cols, out.rows());
    out = autograd::SpMMValues(asg.pattern, asg.values, out);
  }
  return out;
}

}  // namespace adamgnn::core
