#include "core/adapters.h"

#include "util/logging.h"

namespace adamgnn::core {

AdamGnnNodeModel::AdamGnnNodeModel(const AdamGnnConfig& config,
                                   util::Rng* rng)
    : model_(config, rng) {
  ADAMGNN_CHECK_GT(config.num_classes, 0u);
}

train::NodeModel::Out AdamGnnNodeModel::Forward(const graph::Graph& g,
                                                bool training,
                                                util::Rng* rng) {
  AdamGnn::Output out = model_.Forward(g, training, rng);
  last_attention_ = out.flyback_attention;
  last_levels_ = out.levels;
  return {out.logits, out.aux_loss};
}

std::vector<autograd::Variable> AdamGnnNodeModel::Parameters() const {
  return model_.Parameters();
}

AdamGnnEmbeddingModel::AdamGnnEmbeddingModel(const AdamGnnConfig& config,
                                             util::Rng* rng)
    : model_(config, rng),
      projection_(config.hidden_dim, config.hidden_dim, /*use_bias=*/false,
                  rng) {}

train::EmbeddingModel::Out AdamGnnEmbeddingModel::Forward(
    const graph::Graph& g, bool training, util::Rng* rng) {
  AdamGnn::Output out = model_.Forward(g, training, rng);
  // For link prediction L_task = L_R (the trainer's BCE on edges), so the
  // aux term carries γ·L_KL + δ·L_R as configured.
  return {projection_.Forward(out.embeddings), out.aux_loss};
}

std::vector<autograd::Variable> AdamGnnEmbeddingModel::Parameters() const {
  std::vector<autograd::Variable> params = model_.Parameters();
  for (auto& p : projection_.Parameters()) params.push_back(p);
  return params;
}

AdamGnnGraphModel::AdamGnnGraphModel(const AdamGnnConfig& config,
                                     int num_graph_classes, util::Rng* rng)
    : model_([&config, num_graph_classes] {
        AdamGnnConfig c = config;
        c.num_classes = static_cast<size_t>(num_graph_classes);
        return c;
      }(), rng) {
  ADAMGNN_CHECK_GT(num_graph_classes, 0);
}

train::GraphModel::Out AdamGnnGraphModel::Forward(
    const graph::GraphBatch& batch, bool training, util::Rng* rng) {
  AdamGnn::Output out = model_.Forward(batch.merged, training, rng);
  autograd::Variable logits =
      model_.GraphLogits(out, batch.node_to_graph, batch.num_graphs());
  return {logits, out.aux_loss};
}

std::vector<autograd::Variable> AdamGnnGraphModel::Parameters() const {
  return model_.Parameters();
}

}  // namespace adamgnn::core
