#include "core/adapters.h"

#include "util/logging.h"

namespace adamgnn::core {

const std::shared_ptr<const GraphPlan>& PlanCache::For(const graph::Graph& g) {
  const uint64_t fp = GraphPlan::Fingerprint(g);
  if (plan_ == nullptr || plan_->fingerprint() != fp) {
    plan_ = GraphPlan::Build(g, lambda_);
  }
  return plan_;
}

AdamGnnNodeModel::AdamGnnNodeModel(const AdamGnnConfig& config,
                                   util::Rng* rng)
    : model_(config, rng), plans_(config.lambda) {
  ADAMGNN_CHECK_GT(config.num_classes, 0u);
}

train::NodeModel::Out AdamGnnNodeModel::Forward(const graph::Graph& g,
                                                bool training,
                                                util::Rng* rng) {
  AdamGnn::Output out = model_.Forward(g, *plans_.For(g), training, rng);
  last_attention_ = out.flyback_attention;
  last_levels_ = out.levels;
  return {out.logits, out.aux_loss};
}

train::NodeModel::Out AdamGnnNodeModel::Evaluate(const graph::Graph& g,
                                                 util::Rng* rng) {
  (void)rng;  // the session consumes no randomness
  if (session_ == nullptr) {
    session_ = std::make_unique<InferenceSession>(model_);
  } else {
    session_->RefreshWeights(model_);
  }
  const InferenceSession::Result& r = session_->Run(plans_.For(g));
  last_attention_ = r.flyback_attention;
  last_levels_ = r.levels;
  return {autograd::Variable::Constant(r.logits), autograd::Variable()};
}

std::vector<autograd::Variable> AdamGnnNodeModel::Parameters() const {
  return model_.Parameters();
}

AdamGnnEmbeddingModel::AdamGnnEmbeddingModel(const AdamGnnConfig& config,
                                             util::Rng* rng)
    : model_(config, rng),
      plans_(config.lambda),
      projection_(config.hidden_dim, config.hidden_dim, /*use_bias=*/false,
                  rng) {}

train::EmbeddingModel::Out AdamGnnEmbeddingModel::Forward(
    const graph::Graph& g, bool training, util::Rng* rng) {
  AdamGnn::Output out = model_.Forward(g, *plans_.For(g), training, rng);
  // For link prediction L_task = L_R (the trainer's BCE on edges), so the
  // aux term carries γ·L_KL + δ·L_R as configured.
  return {projection_.Forward(out.embeddings), out.aux_loss};
}

train::EmbeddingModel::Out AdamGnnEmbeddingModel::Evaluate(
    const graph::Graph& g, util::Rng* rng) {
  (void)rng;
  if (session_ == nullptr) {
    session_ = std::make_unique<InferenceSession>(model_);
  } else {
    session_->RefreshWeights(model_);
  }
  const InferenceSession::Result& r = session_->Run(plans_.For(g));
  tensor::Matrix projected = nn::Linear::ForwardValues(
      r.embeddings, projection_.weight().value(), tensor::Matrix());
  return {autograd::Variable::Constant(std::move(projected)),
          autograd::Variable()};
}

std::vector<autograd::Variable> AdamGnnEmbeddingModel::Parameters() const {
  std::vector<autograd::Variable> params = model_.Parameters();
  for (auto& p : projection_.Parameters()) params.push_back(p);
  return params;
}

AdamGnnGraphModel::AdamGnnGraphModel(const AdamGnnConfig& config,
                                     int num_graph_classes, util::Rng* rng)
    : model_([&config, num_graph_classes] {
        AdamGnnConfig c = config;
        c.num_classes = static_cast<size_t>(num_graph_classes);
        return c;
      }(), rng) {
  ADAMGNN_CHECK_GT(num_graph_classes, 0);
}

train::GraphModel::Out AdamGnnGraphModel::Forward(
    const graph::GraphBatch& batch, bool training, util::Rng* rng) {
  AdamGnn::Output out = model_.Forward(batch.merged, training, rng);
  autograd::Variable logits =
      model_.GraphLogits(out, batch.node_to_graph, batch.num_graphs());
  return {logits, out.aux_loss};
}

train::GraphModel::Out AdamGnnGraphModel::Evaluate(
    const graph::GraphBatch& batch, util::Rng* rng) {
  (void)rng;
  if (session_ == nullptr) {
    session_ = std::make_unique<InferenceSession>(model_);
  } else {
    session_->RefreshWeights(model_);
  }
  auto plan = GraphPlan::Build(batch.merged, model_.config().lambda);
  tensor::Matrix logits =
      session_->GraphLogits(plan, batch.node_to_graph, batch.num_graphs());
  return {autograd::Variable::Constant(std::move(logits)),
          autograd::Variable()};
}

std::vector<autograd::Variable> AdamGnnGraphModel::Parameters() const {
  return model_.Parameters();
}

}  // namespace adamgnn::core
