// Explainability utilities (paper Section 4.2): AdamGNN can explain a
// prediction in terms of the *scope of the graph* — which granularity level
// the node drew its decisive message from (flyback attention β), and which
// ego-network absorbed it during pooling — instead of only local neighbors.

#ifndef ADAMGNN_CORE_EXPLAIN_H_
#define ADAMGNN_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/adamgnn_model.h"

namespace adamgnn::core {

struct NodeExplanation {
  size_t node = 0;
  /// β_k(v) per granularity level (sums to 1; empty when flyback is off or
  /// no level was built).
  std::vector<double> level_attention;
  /// 1-based level with the highest attention; 0 means "primary (local)
  /// representation only".
  int dominant_level = 0;
  /// The level-1 ego-network that absorbed this node (-1: retained).
  int64_t level1_ego = -1;
};

/// Extracts explanations for every node from a forward output.
std::vector<NodeExplanation> ExplainNodes(const AdamGnn::Output& output);

/// Per-class mean attention over levels: the data behind Figure 2. Rows are
/// classes, columns are levels. `labels` must cover every node.
tensor::Matrix ClassLevelAttention(const AdamGnn::Output& output,
                                   const std::vector<int>& labels,
                                   int num_classes);

/// Human-readable one-liner, e.g.
/// "node 17: draws mostly on level 2 (beta = 0.61); pooled into ego 4".
std::string FormatExplanation(const NodeExplanation& explanation);

}  // namespace adamgnn::core

#endif  // ADAMGNN_CORE_EXPLAIN_H_
