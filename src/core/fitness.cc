#include "core/fitness.h"

#include <deque>
#include <utility>

#include "autograd/loss_ops.h"
#include "autograd/ops.h"
#include "autograd/segment_ops.h"
#include "core/graph_plan.h"
#include "nn/init.h"
#include "tensor/kernels.h"
#include "util/cancel.h"
#include "util/logging.h"

namespace adamgnn::core {

std::vector<std::vector<size_t>> AdjacencyLists(const graph::Graph& g) {
  std::vector<std::vector<size_t>> adj(g.num_nodes());
  for (graph::NodeId v = 0; static_cast<size_t>(v) < g.num_nodes(); ++v) {
    for (graph::NodeId u : g.Neighbors(v)) {
      adj[static_cast<size_t>(v)].push_back(static_cast<size_t>(u));
    }
  }
  return adj;
}

EgoPairs EgoPairs::Build(const std::vector<std::vector<size_t>>& adjacency,
                         int lambda) {
  ADAMGNN_CHECK_GE(lambda, 1);
  EgoPairs pairs;
  pairs.num_nodes = adjacency.size();
  const size_t n = adjacency.size();
  std::vector<int> visited(n, 0);
  std::vector<size_t> seen;
  for (size_t ego = 0; ego < n; ++ego) {
    // Strided cancellation poll: an expired serving deadline stops the λ-hop
    // enumeration here; the caller (GraphPlan::TryBuild or the forward's
    // level rebuild) checks the token right after and discards the partial
    // pair list, so training and uncancelled runs are untouched.
    if ((ego & 255) == 0 && util::CancelRequested()) break;
    // Bounded BFS identical to graph::EgoNetwork but over raw lists.
    seen.clear();
    std::deque<std::pair<size_t, int>> queue;
    queue.emplace_back(ego, 0);
    visited[ego] = 1;
    seen.push_back(ego);
    while (!queue.empty()) {
      auto [v, depth] = queue.front();
      queue.pop_front();
      if (depth == lambda) continue;
      for (size_t w : adjacency[v]) {
        if (visited[w]) continue;
        visited[w] = 1;
        seen.push_back(w);
        pairs.ego.push_back(ego);
        pairs.member.push_back(w);
        queue.emplace_back(w, depth + 1);
      }
    }
    for (size_t v : seen) visited[v] = 0;
  }
  return pairs;
}

FitnessScorer::FitnessScorer(size_t dim, util::Rng* rng, FitnessMode mode)
    : mode_(mode) {
  weight_ = autograd::Variable::Parameter(nn::GlorotUniform(dim, dim, rng));
  attention_ =
      autograd::Variable::Parameter(nn::GlorotUniform(2 * dim, 1, rng));
}

namespace {

// Shared body of the two Score overloads: `dot_pairs` is the (member, ego)
// gather list aligned with `pairs`.
FitnessScorer::Scores ScoreImpl(
    const EgoPairs& pairs,
    std::vector<std::pair<size_t, size_t>> dot_pairs,
    const autograd::Variable& h, const autograd::Variable& weight,
    const autograd::Variable& attention, FitnessMode mode) {
  ADAMGNN_CHECK_GT(pairs.num_pairs(), 0u);
  autograd::Variable wh = autograd::MatMul(h, weight);
  autograd::Variable wh_member = autograd::GatherRows(wh, pairs.member);
  autograd::Variable wh_ego = autograd::GatherRows(wh, pairs.ego);

  // f^s: attention logits normalized within each ego-network.
  autograd::Variable logits = autograd::LeakyRelu(
      autograd::MatMul(autograd::ConcatCols(wh_member, wh_ego), attention),
      0.2);
  std::vector<size_t> segments = pairs.ego;
  autograd::Variable f_s = autograd::SegmentSoftmax(
      logits, std::move(segments), pairs.num_nodes);

  // f^c: linearity between member and ego representations.
  autograd::Variable f_c = autograd::Sigmoid(
      autograd::EdgeDotProduct(h, std::move(dot_pairs)));

  FitnessScorer::Scores scores;
  switch (mode) {
    case FitnessMode::kBoth:
      scores.pair_phi = autograd::CwiseMul(f_s, f_c);
      break;
    case FitnessMode::kAttentionOnly:
      scores.pair_phi = f_s;
      break;
    case FitnessMode::kSigmoidOnly:
      scores.pair_phi = f_c;
      break;
  }
  scores.ego_phi = autograd::SegmentMean(scores.pair_phi, pairs.ego,
                                         pairs.num_nodes);
  return scores;
}

}  // namespace

FitnessScorer::Scores FitnessScorer::Score(const EgoPairs& pairs,
                                           const autograd::Variable& h) const {
  std::vector<std::pair<size_t, size_t>> dot_pairs(pairs.num_pairs());
  for (size_t p = 0; p < pairs.num_pairs(); ++p) {
    dot_pairs[p] = {pairs.member[p], pairs.ego[p]};
  }
  return ScoreImpl(pairs, std::move(dot_pairs), h, weight_, attention_, mode_);
}

FitnessScorer::Scores FitnessScorer::Score(const LevelTopology& topo,
                                           const autograd::Variable& h) const {
  return ScoreImpl(topo.pairs, topo.dot_pairs, h, weight_, attention_, mode_);
}

FitnessScorer::ValueScores FitnessScorer::ScoreValues(
    const LevelTopology& topo, const tensor::Matrix& h,
    const tensor::Matrix& weight, const tensor::Matrix& attention,
    FitnessMode mode) {
  const EgoPairs& pairs = topo.pairs;
  ADAMGNN_CHECK_GT(pairs.num_pairs(), 0u);
  tensor::Matrix wh = tensor::MatMul(h, weight);
  tensor::Matrix wh_member = wh.GatherRows(pairs.member);
  tensor::Matrix wh_ego = wh.GatherRows(pairs.ego);

  tensor::Matrix logits = tensor::LeakyRelu(
      tensor::MatMul(tensor::ConcatCols(wh_member, wh_ego), attention), 0.2);
  tensor::Matrix f_s =
      tensor::SegmentSoftmax(logits, pairs.ego, pairs.num_nodes);
  tensor::Matrix f_c =
      tensor::Sigmoid(tensor::EdgeDots(h, topo.dot_pairs));

  ValueScores scores;
  switch (mode) {
    case FitnessMode::kBoth:
      scores.pair_phi = tensor::CwiseMul(f_s, f_c);
      break;
    case FitnessMode::kAttentionOnly:
      scores.pair_phi = std::move(f_s);
      break;
    case FitnessMode::kSigmoidOnly:
      scores.pair_phi = std::move(f_c);
      break;
  }
  scores.ego_phi =
      tensor::SegmentMean(scores.pair_phi, pairs.ego, pairs.num_nodes);
  return scores;
}

std::vector<autograd::Variable> FitnessScorer::Parameters() const {
  return {weight_, attention_};
}

}  // namespace adamgnn::core
