// Hyper-node feature initialisation (Eq. 3): a selected ego's hyper node
// starts from the ego's own representation plus a self-attention-weighted sum
// of its members' representations,
//   X_k(i) = H_{k-1}(i) + Σ_{j in c_λ(i)\i} α_ij H_{k-1}(j),
//   α_ij   = softmax_{j}(aᵀ LeakyReLU(W(φ_ij · h_j) ‖ h_i)).
// Retained nodes keep their representation unchanged.

#ifndef ADAMGNN_CORE_HYPER_FEATURES_H_
#define ADAMGNN_CORE_HYPER_FEATURES_H_

#include <vector>

#include "autograd/variable.h"
#include "core/assignment.h"
#include "core/ego_selection.h"
#include "core/fitness.h"
#include "nn/module.h"
#include "util/random.h"

namespace adamgnn::core {

class HyperFeatureInit : public nn::Module {
 public:
  HyperFeatureInit(size_t dim, util::Rng* rng);

  /// Produces X_k (num_hyper_nodes x dim), rows ordered like the assignment
  /// columns (selected egos first, then retained nodes).
  autograd::Variable Initialise(const EgoPairs& pairs,
                                const Selection& selection,
                                const Assignment& assignment,
                                const FitnessScorer::Scores& scores,
                                const autograd::Variable& h_prev) const;

  std::vector<autograd::Variable> Parameters() const override;

 private:
  autograd::Variable weight_;     // (dim, dim) — W
  autograd::Variable attention_;  // (2·dim, 1) — a
};

}  // namespace adamgnn::core

#endif  // ADAMGNN_CORE_HYPER_FEATURES_H_
