// Hyper-node feature initialisation (Eq. 3): a selected ego's hyper node
// starts from the ego's own representation plus a self-attention-weighted sum
// of its members' representations,
//   X_k(i) = H_{k-1}(i) + Σ_{j in c_λ(i)\i} α_ij H_{k-1}(j),
//   α_ij   = softmax_{j}(aᵀ LeakyReLU(W(φ_ij · h_j) ‖ h_i)).
// Retained nodes keep their representation unchanged.

#ifndef ADAMGNN_CORE_HYPER_FEATURES_H_
#define ADAMGNN_CORE_HYPER_FEATURES_H_

#include <vector>

#include "autograd/variable.h"
#include "core/assignment.h"
#include "core/ego_selection.h"
#include "core/fitness.h"
#include "nn/module.h"
#include "util/random.h"

namespace adamgnn::core {

class HyperFeatureInit : public nn::Module {
 public:
  HyperFeatureInit(size_t dim, util::Rng* rng);

  /// Produces X_k (num_hyper_nodes x dim), rows ordered like the assignment
  /// columns (selected egos first, then retained nodes). The gather and
  /// segment index sets come precomputed from the assignment structure.
  autograd::Variable Initialise(const EgoPairs& pairs,
                                const Selection& selection,
                                const Assignment& assignment,
                                const FitnessScorer::Scores& scores,
                                const autograd::Variable& h_prev) const;

  /// Raw-matrix forward of Initialise for the tape-free inference path;
  /// same kernels, same order, bitwise-equal output at the same weights.
  /// `pair_phi` is the full per-pair φ column the structure indexes into.
  static tensor::Matrix InitialiseValues(const AssignmentStructure& structure,
                                         const tensor::Matrix& pair_phi,
                                         const tensor::Matrix& h_prev,
                                         const tensor::Matrix& weight,
                                         const tensor::Matrix& attention);

  std::vector<autograd::Variable> Parameters() const override;

  const autograd::Variable& weight() const { return weight_; }
  const autograd::Variable& attention() const { return attention_; }

 private:
  autograd::Variable weight_;     // (dim, dim) — W
  autograd::Variable attention_;  // (2·dim, 1) — a
};

}  // namespace adamgnn::core

#endif  // ADAMGNN_CORE_HYPER_FEATURES_H_
