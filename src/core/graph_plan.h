// Topology-conditioned precomputation for the AdamGNN forward pass. Every
// quantity here depends only on the graph's structure (and λ), never on
// model weights: the normalized adjacency Â, the base adjacency used to
// derive hyper-graph connectivity, the λ-hop ego-network enumeration and
// 1-hop local-max neighborhoods of level 0, and the hoisted feature
// constant. Built once per graph and shared by training and inference, it
// removes the per-forward structure recomputation the monolithic forward
// used to pay on every call.
//
// Invalidation rule: a plan is invalid iff the topology changes (drop the
// plan); weight updates never invalidate it (they invalidate only the
// weight-dependent selection cache in core::InferenceSession).

#ifndef ADAMGNN_CORE_GRAPH_PLAN_H_
#define ADAMGNN_CORE_GRAPH_PLAN_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "core/fitness.h"
#include "graph/graph.h"
#include "graph/sparse_matrix.h"
#include "util/status.h"

namespace adamgnn::core {

/// The structure of one pooling level: λ-hop ego memberships, the 1-hop
/// lists the local-max selection compares over, and the (member, ego) pair
/// list fed to the f^c dot products. Level 0's instance lives in the
/// GraphPlan; deeper levels are derived on the fly because their topology
/// depends on the weight-dependent selections of the level below.
struct LevelTopology {
  EgoPairs pairs;
  std::vector<std::vector<size_t>> adjacency;
  /// (member[p], ego[p]) per pair — the gather list for Eq. 2's f^c.
  std::vector<std::pair<size_t, size_t>> dot_pairs;

  /// Enumerates the level's topology from its 1-hop adjacency lists.
  static LevelTopology FromAdjacency(std::vector<std::vector<size_t>> adjacency,
                                     int lambda);
};

/// Everything the forward pass needs that is a pure function of (topology,
/// features, λ). Immutable after Build; cheap to share via shared_ptr.
class GraphPlan {
 public:
  static std::shared_ptr<const GraphPlan> Build(const graph::Graph& g,
                                                int lambda);

  /// Cancellable Build for the serving path: polls the ambient
  /// util::CancelToken between construction phases (fingerprint, Â,
  /// adjacency, level-0 ego enumeration) and inside the long per-node
  /// loops, so an expired request deadline aborts plan construction in
  /// bounded time with DeadlineExceeded instead of running to completion.
  /// Identical output to Build when the token never fires (the checkpoints
  /// touch no data). Also validates lambda (InvalidArgument for < 1)
  /// instead of aborting.
  static util::Result<std::shared_ptr<const GraphPlan>> TryBuild(
      const graph::Graph& g, int lambda);

  /// Order-sensitive digest of the plan inputs: node count, CSR neighbor
  /// stream, and raw feature bytes (features are folded in because the plan
  /// hoists a copy of them). Two graphs with the same fingerprint are
  /// treated as plan-compatible; callers key plan caches on it so a
  /// recycled Graph address can never alias a stale plan.
  static uint64_t Fingerprint(const graph::Graph& g);

  size_t num_nodes() const { return num_nodes_; }
  int lambda() const { return lambda_; }
  uint64_t fingerprint() const { return fingerprint_; }

  /// Â = D̂^{-1/2}(A+I)D̂^{-1/2}, shared with the GCN layers.
  const std::shared_ptr<const graph::SparseMatrix>& norm_adj() const {
    return norm_adj_;
  }
  /// The unnormalized adjacency A, the seed of the A_k = SᵀÂS chain.
  const graph::SparseMatrix& adjacency() const { return adjacency_; }
  const LevelTopology& level0() const { return level0_; }

  /// g.features() wrapped in a Variable once at build time, so forwards
  /// stop re-materializing the feature matrix per call. Undefined when the
  /// graph has no features.
  const autograd::Variable& feature_constant() const {
    return feature_constant_;
  }

 private:
  GraphPlan() = default;

  size_t num_nodes_ = 0;
  int lambda_ = 1;
  uint64_t fingerprint_ = 0;
  std::shared_ptr<const graph::SparseMatrix> norm_adj_;
  graph::SparseMatrix adjacency_;
  LevelTopology level0_;
  autograd::Variable feature_constant_;
};

}  // namespace adamgnn::core

#endif  // ADAMGNN_CORE_GRAPH_PLAN_H_
