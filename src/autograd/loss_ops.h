// Differentiable losses: the task losses (softmax CE, BCE-with-logits, MSE),
// the edge-reconstruction scorer behind L_R (Eq. 6), and the Student-t
// self-optimisation clustering loss L_KL (Eq. 5).

#ifndef ADAMGNN_AUTOGRAD_LOSS_OPS_H_
#define ADAMGNN_AUTOGRAD_LOSS_OPS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace adamgnn::autograd {

/// Mean softmax cross-entropy over the rows listed in `rows`:
///   L = -1/|rows| Σ_{r in rows} log softmax(logits.row(r))[labels[r]].
/// `labels` is indexed by absolute row id and must cover every listed row.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels,
                             const std::vector<size_t>& rows);

/// Predicted class per row (argmax of logits). Not differentiable.
std::vector<int> ArgmaxRows(const tensor::Matrix& logits);

/// Mean binary cross-entropy with logits (m x 1); targets in [0,1].
/// Computed in the numerically stable form
///   max(x,0) - x·t + log(1 + exp(-|x|)).
Variable BinaryCrossEntropyWithLogits(const Variable& logits,
                                      const std::vector<double>& targets);

/// Mean squared error against a constant target of the same shape.
Variable MeanSquaredError(const Variable& pred, const tensor::Matrix& target);

/// logits_e = h.row(u_e) · h.row(v_e) for each pair (m x 1). This is the
/// decoder of the reconstruction loss A' = σ(H Hᵀ) restricted to sampled
/// entries, and the link-prediction scorer.
Variable EdgeDotProduct(const Variable& h,
                        std::vector<std::pair<size_t, size_t>> pairs);

/// Student-t self-optimisation clustering loss (Xie et al. 2016; Eq. 5):
/// soft assignment q_ij of every node j to every ego i (μ = 1), sharpened
/// target p_ij treated as constant, loss = KL(P ‖ Q) averaged over nodes.
/// `ego_rows` are the row ids of the selected egos in h; must be non-empty.
Variable SelfOptimisationLoss(const Variable& h,
                              const std::vector<size_t>& ego_rows);

}  // namespace adamgnn::autograd

#endif  // ADAMGNN_AUTOGRAD_LOSS_OPS_H_
