#include "autograd/segment_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "autograd/ops.h"
#include "tensor/kernels.h"
#include "util/logging.h"

namespace adamgnn::autograd {

using internal::AccumulateGrad;
using internal::NewOpNode;
using internal::Node;
using tensor::Matrix;

Variable SegmentSum(const Variable& x, std::vector<size_t> segments,
                    size_t num_segments) {
  ADAMGNN_CHECK_EQ(segments.size(), x.rows());
  auto px = x.node();
  Matrix out = tensor::SegmentSum(x.value(), segments, num_segments);
  return Variable::FromNode(NewOpNode(
      std::move(out), {px}, [px, seg = std::move(segments)](Node& self) {
        Matrix d(px->value.rows(), px->value.cols());
        for (size_t i = 0; i < seg.size(); ++i) {
          const double* g = self.grad.row(seg[i]);
          std::copy(g, g + d.cols(), d.row(i));
        }
        AccumulateGrad(px.get(), d);
      }));
}

Variable SegmentMean(const Variable& x, std::vector<size_t> segments,
                     size_t num_segments) {
  ADAMGNN_CHECK_EQ(segments.size(), x.rows());
  auto px = x.node();
  std::vector<double> inv_counts(num_segments, 0.0);
  for (size_t s : segments) {
    ADAMGNN_CHECK_LT(s, num_segments);
    inv_counts[s] += 1.0;
  }
  for (double& c : inv_counts) {
    if (c > 0.0) c = 1.0 / c;
  }
  Matrix out = tensor::SegmentMean(x.value(), segments, num_segments);
  return Variable::FromNode(
      NewOpNode(std::move(out), {px},
                [px, seg = std::move(segments), inv_counts](Node& self) {
                  Matrix d(px->value.rows(), px->value.cols());
                  for (size_t i = 0; i < seg.size(); ++i) {
                    const double w = inv_counts[seg[i]];
                    const double* g = self.grad.row(seg[i]);
                    double* dr = d.row(i);
                    for (size_t j = 0; j < d.cols(); ++j) dr[j] = w * g[j];
                  }
                  AccumulateGrad(px.get(), d);
                }));
}

Variable SegmentMax(const Variable& x, std::vector<size_t> segments,
                    size_t num_segments) {
  ADAMGNN_CHECK_EQ(segments.size(), x.rows());
  auto px = x.node();
  const size_t d = x.cols();
  // argmax[s * d + j] = input row that owns the max of column j in segment s.
  std::vector<int64_t> argmax;
  Matrix out = tensor::SegmentMax(x.value(), segments, num_segments, &argmax);
  return Variable::FromNode(NewOpNode(
      std::move(out), {px},
      [px, argmax = std::move(argmax), d](Node& self) {
        Matrix dx(px->value.rows(), d);
        for (size_t s = 0; s < self.grad.rows(); ++s) {
          const double* g = self.grad.row(s);
          for (size_t j = 0; j < d; ++j) {
            const int64_t am = argmax[s * d + j];
            if (am >= 0) dx(static_cast<size_t>(am), j) += g[j];
          }
        }
        AccumulateGrad(px.get(), dx);
      }));
}

Variable SegmentSoftmax(const Variable& scores, std::vector<size_t> segments,
                        size_t num_segments) {
  ADAMGNN_CHECK_EQ(scores.cols(), 1u);
  ADAMGNN_CHECK_EQ(segments.size(), scores.rows());
  auto ps = scores.node();
  Matrix out = tensor::SegmentSoftmax(scores.value(), segments, num_segments);
  return Variable::FromNode(NewOpNode(
      std::move(out), {ps},
      [ps, seg = std::move(segments), num_segments](Node& self) {
        // ds_i = p_i (g_i - Σ_{j in seg} p_j g_j)
        std::vector<double> seg_dot(num_segments, 0.0);
        const size_t m2 = self.value.rows();
        for (size_t i = 0; i < m2; ++i) {
          seg_dot[seg[i]] += self.grad(i, 0) * self.value(i, 0);
        }
        Matrix d(m2, 1);
        for (size_t i = 0; i < m2; ++i) {
          d(i, 0) = self.value(i, 0) * (self.grad(i, 0) - seg_dot[seg[i]]);
        }
        AccumulateGrad(ps.get(), d);
      }));
}

}  // namespace adamgnn::autograd
