// Differentiable segment (scatter/gather) reductions — the message-passing
// primitives. Segments identify, e.g., the destination node of each edge
// message, the ego-network of each member, or the source graph of each node
// in a batch (readout).

#ifndef ADAMGNN_AUTOGRAD_SEGMENT_OPS_H_
#define ADAMGNN_AUTOGRAD_SEGMENT_OPS_H_

#include <vector>

#include "autograd/variable.h"

namespace adamgnn::autograd {

/// out.row(s) = Σ_{i : seg[i]==s} x.row(i). out has num_segments rows.
Variable SegmentSum(const Variable& x, std::vector<size_t> segments,
                    size_t num_segments);

/// Per-segment mean; empty segments produce zero rows.
Variable SegmentMean(const Variable& x, std::vector<size_t> segments,
                     size_t num_segments);

/// Per-segment, per-column max; gradient flows to the arg-max element.
/// Empty segments produce zero rows (and receive no gradient).
Variable SegmentMax(const Variable& x, std::vector<size_t> segments,
                    size_t num_segments);

/// Softmax of scores (m x 1) *within* each segment:
///   out_i = exp(s_i - max_seg) / Σ_{j in seg(i)} exp(s_j - max_seg).
/// This is the attention normalizer of GAT, of AdamGNN's fitness component
/// f^s_φ (Eq. 2), of the hyper-node attention α (Eq. 3), and of the flyback
/// attention β (Eq. 4).
Variable SegmentSoftmax(const Variable& scores, std::vector<size_t> segments,
                        size_t num_segments);

}  // namespace adamgnn::autograd

#endif  // ADAMGNN_AUTOGRAD_SEGMENT_OPS_H_
