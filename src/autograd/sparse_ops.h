// Differentiable sparse products. Two flavors:
//  - SpMM with a *constant* sparse operator (GCN propagation with Â).
//  - SpMM where the sparse *values* are themselves a Variable (AdamGNN's
//    assignment matrices S_k, whose entries are learned fitness scores).

#ifndef ADAMGNN_AUTOGRAD_SPARSE_OPS_H_
#define ADAMGNN_AUTOGRAD_SPARSE_OPS_H_

#include <memory>
#include <mutex>
#include <vector>

#include "autograd/variable.h"
#include "graph/sparse_matrix.h"

namespace adamgnn::autograd {

/// The fixed sparsity structure of a learned sparse matrix: where the
/// nonzeros live, independent of their values.
struct SparsePattern {
  size_t rows = 0;
  size_t cols = 0;
  /// Coordinates of each nonzero; values come from a Variable of shape
  /// (nnz x 1) aligned with these arrays.
  std::vector<size_t> row_indices;
  std::vector<size_t> col_indices;

  size_t nnz() const { return row_indices.size(); }

  /// Materializes a concrete sparse matrix with the given values.
  graph::SparseMatrix WithValues(const std::vector<double>& values) const;

  /// Entries grouped by one coordinate, for gather-style SpMMValues kernels:
  /// group g owns entry ids order[offsets[g] .. offsets[g+1]), ascending
  /// within each group (= the serial scatter kernel's summation order).
  struct EntryGroups {
    std::vector<size_t> offsets;  // one per group, plus a trailing total
    std::vector<size_t> order;    // permutation of [0, nnz)
  };

  /// Entries grouped by row_indices (offsets sized rows + 1). Lazily built,
  /// cached, thread-safe once-init. Valid for the pattern's lifetime:
  /// patterns are shared as `shared_ptr<const SparsePattern>` and their index
  /// arrays are never mutated after construction.
  std::shared_ptr<const EntryGroups> RowGroups() const;
  /// Entries grouped by col_indices (offsets sized cols + 1).
  std::shared_ptr<const EntryGroups> ColGroups() const;

 private:
  struct GroupCache {
    std::mutex mu;
    std::shared_ptr<const EntryGroups> by_row;
    std::shared_ptr<const EntryGroups> by_col;
  };
  mutable std::shared_ptr<GroupCache> gcache_ =
      std::make_shared<GroupCache>();
};

/// y = S * x for a constant sparse S. Gradient: dx = Sᵀ g.
Variable SpMM(std::shared_ptr<const graph::SparseMatrix> s, const Variable& x);

/// y = Sᵀ * x for a constant sparse S. Gradient: dx = S g.
Variable SpMMTranspose(std::shared_ptr<const graph::SparseMatrix> s,
                       const Variable& x);

/// y = S(values) * x where values is (nnz x 1) aligned with `pattern`.
/// Differentiable in both values and x:
///   dvalues_k = g.row(i_k) · x.row(j_k),  dx.row(j) += v_k g.row(i_k).
Variable SpMMValues(std::shared_ptr<const SparsePattern> pattern,
                    const Variable& values, const Variable& x);

/// Raw forward of SpMMValues on plain matrices — the exact kernel the
/// differentiable op runs (same deterministic chunking), exposed for
/// tape-free inference so its outputs are bitwise-identical to training-time
/// eval. `values` must be (nnz x 1) aligned with `pattern`.
tensor::Matrix SpMMValuesForward(const SparsePattern& pattern,
                                 const tensor::Matrix& values,
                                 const tensor::Matrix& x);

}  // namespace adamgnn::autograd

#endif  // ADAMGNN_AUTOGRAD_SPARSE_OPS_H_
