// Differentiable dense ops over Variables. Unless stated otherwise, shapes
// follow the corresponding tensor:: kernels, and each op's gradient is
// checked against finite differences in tests/autograd_ops_test.cc.

#ifndef ADAMGNN_AUTOGRAD_OPS_H_
#define ADAMGNN_AUTOGRAD_OPS_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"

namespace adamgnn::autograd {

namespace internal {
/// Creates an op output node. requires_grad is inherited from parents; when
/// no parent requires gradients, the pullback and parent links are dropped so
/// inference-only subgraphs cost nothing at backward time.
std::shared_ptr<Node> NewOpNode(tensor::Matrix value,
                                std::vector<std::shared_ptr<Node>> parents,
                                std::function<void(Node&)> backward_fn);
}  // namespace internal

/// a + b (same shape).
Variable Add(const Variable& a, const Variable& b);
/// Sum of one or more same-shaped variables.
Variable AddN(const std::vector<Variable>& xs);
/// a - b (same shape).
Variable Sub(const Variable& a, const Variable& b);
/// a * scalar.
Variable Scale(const Variable& a, double scalar);
/// Elementwise product (same shape).
Variable CwiseMul(const Variable& a, const Variable& b);
/// Adds a 1 x d bias row to every row of a (rows x d).
Variable AddBias(const Variable& a, const Variable& bias);
/// Scales row r of a (rows x d) by col (rows x 1); differentiable in both.
Variable MulColBroadcast(const Variable& a, const Variable& col);
/// Matrix product (m,k) x (k,n).
Variable MatMul(const Variable& a, const Variable& b);
/// Transpose.
Variable Transpose(const Variable& a);

/// Activations.
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, double slope = 0.2);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Exp(const Variable& a);
/// Natural log; inputs must be strictly positive.
Variable Log(const Variable& a);

/// Row-wise softmax.
Variable SoftmaxRows(const Variable& a);

/// [a | b] column concatenation.
Variable ConcatCols(const Variable& a, const Variable& b);

/// [a ; b] row concatenation.
Variable ConcatRows(const Variable& a, const Variable& b);

/// Columns [start, start+len) of x as a new (rows x len) variable.
Variable SliceCols(const Variable& x, size_t start, size_t len);

/// Row gather: out.row(i) = x.row(indices[i]); indices may repeat.
Variable GatherRows(const Variable& x, std::vector<size_t> indices);

/// Row scatter (inverse of gather): out has num_rows rows, out.row(idx[i])
/// += x.row(i); rows not referenced stay zero. Used by Graph U-Net unpooling.
Variable ScatterRows(const Variable& x, std::vector<size_t> indices,
                     size_t num_rows);

/// Reinterprets x's row-major data as (rows x cols); sizes must match.
Variable Reshape(const Variable& x, size_t rows, size_t cols);

/// Sum / mean of all entries, as a 1x1 variable.
Variable Sum(const Variable& x);
Variable Mean(const Variable& x);

/// Row sums as rows x 1.
Variable RowSum(const Variable& x);

/// Stops gradient flow: value passes through, backward does not.
Variable Detach(const Variable& x);

}  // namespace adamgnn::autograd

#endif  // ADAMGNN_AUTOGRAD_OPS_H_
