#include "autograd/variable.h"

#include <utility>

#include "util/logging.h"

namespace adamgnn::autograd {

namespace internal {

void AccumulateGrad(Node* node, const tensor::Matrix& delta) {
  if (!node->requires_grad) return;
  if (!node->grad_ready) {
    ADAMGNN_CHECK(delta.SameShape(node->value));
    node->grad = delta;
    node->grad_ready = true;
    return;
  }
  node->grad += delta;
}

void AccumulateGrad(Node* node, tensor::Matrix&& delta) {
  if (!node->requires_grad) return;
  if (!node->grad_ready) {
    ADAMGNN_CHECK(delta.SameShape(node->value));
    node->grad = std::move(delta);
    node->grad_ready = true;
    return;
  }
  node->grad += delta;
}

}  // namespace internal

Variable Variable::Constant(tensor::Matrix value) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return FromNode(std::move(node));
}

Variable Variable::Parameter(tensor::Matrix value) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return FromNode(std::move(node));
}

const tensor::Matrix& Variable::value() const {
  ADAMGNN_CHECK(defined());
  return node_->value;
}

tensor::Matrix& Variable::mutable_value() {
  ADAMGNN_CHECK(defined());
  return node_->value;
}

const tensor::Matrix& Variable::grad() const {
  ADAMGNN_CHECK(defined());
  if (!node_->grad_ready) {
    // Touched never or not reached by the last Backward: report zeros.
    node_->grad = tensor::Matrix(node_->value.rows(), node_->value.cols());
    node_->grad_ready = true;
  }
  return node_->grad;
}

bool Variable::requires_grad() const {
  ADAMGNN_CHECK(defined());
  return node_->requires_grad;
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

}  // namespace adamgnn::autograd
