#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tensor/kernels.h"
#include "util/logging.h"

namespace adamgnn::autograd {

using internal::AccumulateGrad;
using internal::NewOpNode;
using internal::Node;
using tensor::Matrix;

namespace internal {

std::shared_ptr<Node> NewOpNode(Matrix value,
                                std::vector<std::shared_ptr<Node>> parents,
                                std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool needs = false;
  for (const auto& p : parents) {
    ADAMGNN_CHECK(p != nullptr);
    needs = needs || p->requires_grad;
  }
  // Under a NoGradGuard the node is built as a constant: the forward value
  // is identical, but no parent edges or pullback are retained, so eval
  // passes allocate no tape.
  needs = needs && GradEnabled();
  node->requires_grad = needs;
  if (needs) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

}  // namespace internal

Variable Add(const Variable& a, const Variable& b) {
  ADAMGNN_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node(), pb = b.node();
  return Variable::FromNode(NewOpNode(
      tensor::Add(a.value(), b.value()), {pa, pb}, [pa, pb](Node& self) {
        AccumulateGrad(pa.get(), self.grad);
        AccumulateGrad(pb.get(), self.grad);
      }));
}

Variable AddN(const std::vector<Variable>& xs) {
  ADAMGNN_CHECK(!xs.empty());
  Variable out = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) out = Add(out, xs[i]);
  return out;
}

Variable Sub(const Variable& a, const Variable& b) {
  ADAMGNN_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node(), pb = b.node();
  return Variable::FromNode(NewOpNode(
      tensor::Sub(a.value(), b.value()), {pa, pb}, [pa, pb](Node& self) {
        AccumulateGrad(pa.get(), self.grad);
        AccumulateGrad(pb.get(), tensor::Scale(self.grad, -1.0));
      }));
}

Variable Scale(const Variable& a, double scalar) {
  auto pa = a.node();
  return Variable::FromNode(NewOpNode(
      tensor::Scale(a.value(), scalar), {pa}, [pa, scalar](Node& self) {
        AccumulateGrad(pa.get(), tensor::Scale(self.grad, scalar));
      }));
}

Variable CwiseMul(const Variable& a, const Variable& b) {
  ADAMGNN_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node(), pb = b.node();
  return Variable::FromNode(NewOpNode(
      tensor::CwiseMul(a.value(), b.value()), {pa, pb}, [pa, pb](Node& self) {
        AccumulateGrad(pa.get(), tensor::CwiseMul(self.grad, pb->value));
        AccumulateGrad(pb.get(), tensor::CwiseMul(self.grad, pa->value));
      }));
}

Variable AddBias(const Variable& a, const Variable& bias) {
  ADAMGNN_CHECK_EQ(bias.rows(), 1u);
  ADAMGNN_CHECK_EQ(bias.cols(), a.cols());
  auto pa = a.node(), pb = bias.node();
  return Variable::FromNode(
      NewOpNode(tensor::AddRowBroadcast(a.value(), bias.value()), {pa, pb},
                [pa, pb](Node& self) {
                  AccumulateGrad(pa.get(), self.grad);
                  AccumulateGrad(pb.get(), tensor::ColSum(self.grad));
                }));
}

Variable MulColBroadcast(const Variable& a, const Variable& col) {
  ADAMGNN_CHECK_EQ(col.cols(), 1u);
  ADAMGNN_CHECK_EQ(col.rows(), a.rows());
  auto pa = a.node(), pc = col.node();
  return Variable::FromNode(
      NewOpNode(tensor::MulColBroadcast(a.value(), col.value()), {pa, pc},
                [pa, pc](Node& self) {
                  AccumulateGrad(pa.get(),
                                 tensor::MulColBroadcast(self.grad, pc->value));
                  Matrix dcol(pc->value.rows(), 1);
                  for (size_t r = 0; r < self.grad.rows(); ++r) {
                    double s = 0.0;
                    const double* gr = self.grad.row(r);
                    const double* ar = pa->value.row(r);
                    for (size_t j = 0; j < self.grad.cols(); ++j) {
                      s += gr[j] * ar[j];
                    }
                    dcol(r, 0) = s;
                  }
                  AccumulateGrad(pc.get(), dcol);
                }));
}

Variable MatMul(const Variable& a, const Variable& b) {
  auto pa = a.node(), pb = b.node();
  return Variable::FromNode(NewOpNode(
      tensor::MatMul(a.value(), b.value()), {pa, pb}, [pa, pb](Node& self) {
        AccumulateGrad(pa.get(), tensor::MatMulTransB(self.grad, pb->value));
        AccumulateGrad(pb.get(), tensor::MatMulTransA(pa->value, self.grad));
      }));
}

Variable Transpose(const Variable& a) {
  auto pa = a.node();
  return Variable::FromNode(
      NewOpNode(a.value().Transposed(), {pa}, [pa](Node& self) {
        AccumulateGrad(pa.get(), self.grad.Transposed());
      }));
}

Variable Relu(const Variable& a) {
  auto pa = a.node();
  return Variable::FromNode(
      NewOpNode(tensor::Relu(a.value()), {pa}, [pa](Node& self) {
        Matrix d = self.grad;
        for (size_t i = 0; i < d.size(); ++i) {
          if (pa->value.data()[i] <= 0.0) d.data()[i] = 0.0;
        }
        AccumulateGrad(pa.get(), d);
      }));
}

Variable LeakyRelu(const Variable& a, double slope) {
  auto pa = a.node();
  return Variable::FromNode(
      NewOpNode(tensor::LeakyRelu(a.value(), slope), {pa},
                [pa, slope](Node& self) {
                  Matrix d = self.grad;
                  for (size_t i = 0; i < d.size(); ++i) {
                    if (pa->value.data()[i] <= 0.0) d.data()[i] *= slope;
                  }
                  AccumulateGrad(pa.get(), d);
                }));
}

Variable Sigmoid(const Variable& a) {
  auto pa = a.node();
  Matrix y = tensor::Sigmoid(a.value());
  return Variable::FromNode(NewOpNode(y, {pa}, [pa](Node& self) {
    Matrix d = self.grad;
    for (size_t i = 0; i < d.size(); ++i) {
      const double yi = self.value.data()[i];
      d.data()[i] *= yi * (1.0 - yi);
    }
    AccumulateGrad(pa.get(), d);
  }));
}

Variable Tanh(const Variable& a) {
  auto pa = a.node();
  return Variable::FromNode(
      NewOpNode(tensor::Tanh(a.value()), {pa}, [pa](Node& self) {
        Matrix d = self.grad;
        for (size_t i = 0; i < d.size(); ++i) {
          const double yi = self.value.data()[i];
          d.data()[i] *= 1.0 - yi * yi;
        }
        AccumulateGrad(pa.get(), d);
      }));
}

Variable Exp(const Variable& a) {
  auto pa = a.node();
  return Variable::FromNode(
      NewOpNode(tensor::Exp(a.value()), {pa}, [pa](Node& self) {
        AccumulateGrad(pa.get(), tensor::CwiseMul(self.grad, self.value));
      }));
}

Variable Log(const Variable& a) {
  auto pa = a.node();
  return Variable::FromNode(
      NewOpNode(tensor::Log(a.value()), {pa}, [pa](Node& self) {
        // Match the forward clamp (tensor::Log floors its input at 1e-300):
        // d log(max(x, eps))/dx is 1/x above the floor and 0 below it, so a
        // degenerate zero/negative input gets a finite zero gradient instead
        // of inf/NaN.
        Matrix d = self.grad;
        for (size_t i = 0; i < d.size(); ++i) {
          const double x = pa->value.data()[i];
          d.data()[i] = x > 1e-300 ? d.data()[i] / x : 0.0;
        }
        AccumulateGrad(pa.get(), d);
      }));
}

Variable SoftmaxRows(const Variable& a) {
  auto pa = a.node();
  return Variable::FromNode(
      NewOpNode(tensor::SoftmaxRows(a.value()), {pa}, [pa](Node& self) {
        // dx = y ⊙ (g - <g, y> per row)
        Matrix d(self.grad.rows(), self.grad.cols());
        for (size_t r = 0; r < d.rows(); ++r) {
          const double* g = self.grad.row(r);
          const double* y = self.value.row(r);
          double dot = 0.0;
          for (size_t j = 0; j < d.cols(); ++j) dot += g[j] * y[j];
          double* dr = d.row(r);
          for (size_t j = 0; j < d.cols(); ++j) dr[j] = y[j] * (g[j] - dot);
        }
        AccumulateGrad(pa.get(), d);
      }));
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  auto pa = a.node(), pb = b.node();
  const size_t ca = a.cols();
  return Variable::FromNode(
      NewOpNode(tensor::ConcatCols(a.value(), b.value()), {pa, pb},
                [pa, pb, ca](Node& self) {
                  const size_t cb = pb->value.cols();
                  Matrix da(self.grad.rows(), ca);
                  Matrix db(self.grad.rows(), cb);
                  for (size_t r = 0; r < self.grad.rows(); ++r) {
                    const double* g = self.grad.row(r);
                    std::copy(g, g + ca, da.row(r));
                    std::copy(g + ca, g + ca + cb, db.row(r));
                  }
                  AccumulateGrad(pa.get(), da);
                  AccumulateGrad(pb.get(), db);
                }));
}

Variable ConcatRows(const Variable& a, const Variable& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  auto pa = a.node(), pb = b.node();
  const size_t ra = a.rows();
  return Variable::FromNode(
      NewOpNode(tensor::ConcatRows(a.value(), b.value()), {pa, pb},
                [pa, pb, ra](Node& self) {
                  const size_t cols = self.grad.cols();
                  Matrix da(ra, cols);
                  Matrix db(self.grad.rows() - ra, cols);
                  std::copy(self.grad.data(), self.grad.data() + da.size(),
                            da.data());
                  std::copy(self.grad.data() + da.size(),
                            self.grad.data() + self.grad.size(), db.data());
                  AccumulateGrad(pa.get(), da);
                  AccumulateGrad(pb.get(), db);
                }));
}

Variable SliceCols(const Variable& x, size_t start, size_t len) {
  ADAMGNN_CHECK_LE(start + len, x.cols());
  auto px = x.node();
  Matrix out(x.rows(), len);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.value().row(r);
    std::copy(xr + start, xr + start + len, out.row(r));
  }
  return Variable::FromNode(
      NewOpNode(std::move(out), {px}, [px, start, len](Node& self) {
        Matrix d(px->value.rows(), px->value.cols());
        for (size_t r = 0; r < d.rows(); ++r) {
          const double* g = self.grad.row(r);
          std::copy(g, g + len, d.row(r) + start);
        }
        AccumulateGrad(px.get(), d);
      }));
}

Variable GatherRows(const Variable& x, std::vector<size_t> indices) {
  auto px = x.node();
  Matrix out = x.value().GatherRows(indices);
  return Variable::FromNode(NewOpNode(
      std::move(out), {px}, [px, idx = std::move(indices)](Node& self) {
        AccumulateGrad(px.get(),
                       tensor::IndexAddRows(self.grad, idx, px->value.rows()));
      }));
}

Variable ScatterRows(const Variable& x, std::vector<size_t> indices,
                     size_t num_rows) {
  ADAMGNN_CHECK_EQ(indices.size(), x.rows());
  auto px = x.node();
  Matrix out = tensor::IndexAddRows(x.value(), indices, num_rows);
  return Variable::FromNode(NewOpNode(
      std::move(out), {px}, [px, idx = std::move(indices)](Node& self) {
        Matrix d(px->value.rows(), px->value.cols());
        for (size_t i = 0; i < idx.size(); ++i) {
          const double* g = self.grad.row(idx[i]);
          std::copy(g, g + d.cols(), d.row(i));
        }
        AccumulateGrad(px.get(), d);
      }));
}

Variable Reshape(const Variable& x, size_t rows, size_t cols) {
  ADAMGNN_CHECK_EQ(x.value().size(), rows * cols);
  auto px = x.node();
  Matrix out(rows, cols,
             std::vector<double>(x.value().data(),
                                 x.value().data() + x.value().size()));
  return Variable::FromNode(NewOpNode(std::move(out), {px}, [px](Node& self) {
    Matrix d(px->value.rows(), px->value.cols(),
             std::vector<double>(self.grad.data(),
                                 self.grad.data() + self.grad.size()));
    AccumulateGrad(px.get(), d);
  }));
}

Variable Sum(const Variable& x) {
  auto px = x.node();
  Matrix out(1, 1, x.value().Sum());
  return Variable::FromNode(NewOpNode(std::move(out), {px}, [px](Node& self) {
    Matrix d(px->value.rows(), px->value.cols(), self.grad(0, 0));
    AccumulateGrad(px.get(), d);
  }));
}

Variable Mean(const Variable& x) {
  ADAMGNN_CHECK_GT(x.value().size(), 0u);
  return Scale(Sum(x), 1.0 / static_cast<double>(x.value().size()));
}

Variable RowSum(const Variable& x) {
  auto px = x.node();
  return Variable::FromNode(
      NewOpNode(tensor::RowSum(x.value()), {px}, [px](Node& self) {
        Matrix d(px->value.rows(), px->value.cols());
        for (size_t r = 0; r < d.rows(); ++r) {
          const double g = self.grad(r, 0);
          double* dr = d.row(r);
          for (size_t j = 0; j < d.cols(); ++j) dr[j] = g;
        }
        AccumulateGrad(px.get(), d);
      }));
}

Variable Detach(const Variable& x) { return Variable::Constant(x.value()); }

}  // namespace adamgnn::autograd
