#include "autograd/sparse_ops.h"

#include <algorithm>
#include <cstdint>

#include "autograd/ops.h"
#include "tensor/simd_ops.h"
#include "tensor/tuning.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace adamgnn::autograd {

using internal::AccumulateGrad;
using internal::NewOpNode;
using internal::Node;
using tensor::Matrix;

namespace {

// Grains come from tensor/tuning.h (single source of truth shared with
// graph/sparse_matrix.cc and tensor/kernels.cc); inner loops run through the
// per-ISA lane primitives of tensor/simd_ops.h, which use no FMA at any ISA
// — so SpMMValues results are bitwise-identical across scalar/sse2/avx2.

// Legacy engine: out(out_rows[k], :) += weight(k) * x(in_rows[k], :) for k
// in [0, nnz), scattered through per-chunk partials merged in chunk order.
// The entry-chunk decomposition is a pure function of the shapes, so the
// merge — and the result — is bitwise-identical at every thread count.
template <typename WeightFn>
void ScatterRows(const SparsePattern& pattern,
                 const std::vector<size_t>& out_rows,
                 const std::vector<size_t>& in_rows, WeightFn weight,
                 const Matrix& x, Matrix* out) {
  const size_t nnz = pattern.nnz();
  const size_t d = x.cols();
  if (nnz == 0) return;
  const std::vector<util::ChunkRange> chunks = util::SplitRange(
      0, nnz, tensor::tuning::LegacyEntryScatterGrain(nnz, nnz * d));
  std::vector<Matrix> partials;
  for (size_t ci = 1; ci < chunks.size(); ++ci) {
    partials.emplace_back(out->rows(), d);
  }
  util::ParallelForChunks(chunks.size(), [&](size_t ci) {
    Matrix& dst = ci == 0 ? *out : partials[ci - 1];
    for (size_t k = chunks[ci].begin; k < chunks[ci].end; ++k) {
      const double v = weight(k);
      const double* xr = x.row(in_rows[k]);
      double* orow = dst.row(out_rows[k]);
      for (size_t j = 0; j < d; ++j) orow[j] += v * xr[j];
    }
  });
  for (const Matrix& partial : partials) *out += partial;
}

// Engine counterpart of ScatterRows with adaptive strategy selection.
// `transpose=false` computes out(row, :) += w(k) * x(col, :) (forward);
// `transpose=true` swaps the index roles (the dx backward). Both strategies
// fold each output row's contributions in ascending entry order into the
// zero-initialized `out`, so they produce identical bits — to each other and
// to a plain serial loop — at every ISA and thread count. The serial
// strategy additionally skips building (and caching) the entry groups: the
// right call when the pool cannot help or the multiply is small.
void EngineSpmm(const SparsePattern& pattern, bool transpose, const double* w,
                const Matrix& x, Matrix* out) {
  const size_t nnz = pattern.nnz();
  const size_t d = x.cols();
  if (nnz == 0) return;
  const std::vector<size_t>& out_rows =
      transpose ? pattern.col_indices : pattern.row_indices;
  const std::vector<size_t>& in_rows =
      transpose ? pattern.row_indices : pattern.col_indices;
  const tensor::SimdOps* ops = tensor::ActiveOps();
  const int ep = util::EffectiveParallelism();
  if (tensor::tuning::ChooseSpmmTranspose(nnz, d, out->rows(), ep) ==
      tensor::tuning::ReduceStrategy::kSerialScatter) {
    for (size_t k = 0; k < nnz; ++k) {
      ops->axpy(out->row(out_rows[k]), x.row(in_rows[k]), d, w[k]);
    }
    return;
  }
  const std::shared_ptr<const SparsePattern::EntryGroups> groups =
      transpose ? pattern.ColGroups() : pattern.RowGroups();
  const tensor::GatherSpec spec{groups->offsets.data(), groups->order.data(),
                                in_rows.data(),         w,
                                x.data(),               d,
                                out->data(),            false};
  util::ParallelFor(
      0, out->rows(),
      tensor::tuning::GatherRowGrain(out->rows(), nnz * d, ep),
      [&](size_t r0, size_t r1) { ops->gather_rows(spec, r0, r1); });
}

// Counting sort of entry ids by `keys`, ids ascending within each group.
std::shared_ptr<const SparsePattern::EntryGroups> BuildGroups(
    const std::vector<size_t>& keys, size_t num_groups) {
  auto g = std::make_shared<SparsePattern::EntryGroups>();
  g->offsets.assign(num_groups + 1, 0);
  for (size_t key : keys) ++g->offsets[key + 1];
  for (size_t i = 1; i <= num_groups; ++i) g->offsets[i] += g->offsets[i - 1];
  g->order.resize(keys.size());
  std::vector<size_t> cursor(g->offsets.begin(), g->offsets.end() - 1);
  for (size_t k = 0; k < keys.size(); ++k) g->order[cursor[keys[k]]++] = k;
  return g;
}

}  // namespace

std::shared_ptr<const SparsePattern::EntryGroups> SparsePattern::RowGroups()
    const {
  if (gcache_ == nullptr) {  // moved-from pattern being reused
    gcache_ = std::make_shared<GroupCache>();
  }
  const std::shared_ptr<GroupCache> cache = gcache_;
  std::lock_guard<std::mutex> lock(cache->mu);
  if (cache->by_row == nullptr) cache->by_row = BuildGroups(row_indices, rows);
  return cache->by_row;
}

std::shared_ptr<const SparsePattern::EntryGroups> SparsePattern::ColGroups()
    const {
  if (gcache_ == nullptr) {
    gcache_ = std::make_shared<GroupCache>();
  }
  const std::shared_ptr<GroupCache> cache = gcache_;
  std::lock_guard<std::mutex> lock(cache->mu);
  if (cache->by_col == nullptr) cache->by_col = BuildGroups(col_indices, cols);
  return cache->by_col;
}

graph::SparseMatrix SparsePattern::WithValues(
    const std::vector<double>& values) const {
  ADAMGNN_CHECK_EQ(values.size(), nnz());
  std::vector<graph::Triplet> t;
  t.reserve(nnz());
  for (size_t k = 0; k < nnz(); ++k) {
    t.push_back({row_indices[k], col_indices[k], values[k]});
  }
  return graph::SparseMatrix::FromTriplets(rows, cols, std::move(t));
}

Variable SpMM(std::shared_ptr<const graph::SparseMatrix> s,
              const Variable& x) {
  ADAMGNN_CHECK(s != nullptr);
  ADAMGNN_CHECK_EQ(s->cols(), x.rows());
  auto px = x.node();
  return Variable::FromNode(
      NewOpNode(s->MultiplyDense(x.value()), {px}, [s, px](Node& self) {
        AccumulateGrad(px.get(), s->TransposeMultiplyDense(self.grad));
      }));
}

Variable SpMMTranspose(std::shared_ptr<const graph::SparseMatrix> s,
                       const Variable& x) {
  ADAMGNN_CHECK(s != nullptr);
  ADAMGNN_CHECK_EQ(s->rows(), x.rows());
  auto px = x.node();
  return Variable::FromNode(NewOpNode(s->TransposeMultiplyDense(x.value()),
                                      {px}, [s, px](Node& self) {
                                        AccumulateGrad(
                                            px.get(),
                                            s->MultiplyDense(self.grad));
                                      }));
}

Matrix SpMMValuesForward(const SparsePattern& pattern, const Matrix& values,
                         const Matrix& x) {
  ADAMGNN_CHECK_EQ(values.rows(), pattern.nnz());
  ADAMGNN_CHECK_EQ(values.cols(), 1u);
  ADAMGNN_CHECK_EQ(pattern.cols, x.rows());
  Matrix out(pattern.rows, x.cols());
  if (graph::GetSparseEngine() == graph::SparseEngine::kLegacyScatter) {
    ScatterRows(pattern, pattern.row_indices, pattern.col_indices,
                [&values](size_t k) { return values(k, 0); }, x, &out);
  } else {
    EngineSpmm(pattern, /*transpose=*/false, values.data(), x, &out);
  }
  return out;
}

Variable SpMMValues(std::shared_ptr<const SparsePattern> pattern,
                    const Variable& values, const Variable& x) {
  ADAMGNN_CHECK(pattern != nullptr);
  auto pv = values.node();
  auto px = x.node();

  Matrix out = SpMMValuesForward(*pattern, values.value(), x.value());

  return Variable::FromNode(NewOpNode(
      std::move(out), {pv, px}, [pattern, pv, px](Node& self) {
        const size_t d = px->value.cols();
        const size_t nnz = pattern->nnz();
        if (pv->requires_grad) {
          // Gather: dvals(k) is owned by exactly one chunk. Scalar
          // ascending-j dots, identical at every ISA.
          Matrix dvals(nnz, 1);
          util::ParallelFor(
              0, nnz,
              tensor::tuning::GatherEntryGrain(nnz, nnz * d,
                                               util::EffectiveParallelism()),
              [&](size_t b, size_t e) {
                for (size_t k = b; k < e; ++k) {
                  const double* g = self.grad.row(pattern->row_indices[k]);
                  const double* xr = px->value.row(pattern->col_indices[k]);
                  double s = 0.0;
                  for (size_t j = 0; j < d; ++j) s += g[j] * xr[j];
                  dvals(k, 0) = s;
                }
              });
          AccumulateGrad(pv.get(), dvals);
        }
        if (px->requires_grad) {
          // dx rows through the transposed pattern: gather per dx row via
          // the cached column groups (legacy: scatter through partials).
          Matrix dx(px->value.rows(), d);
          const Matrix& vals = pv->value;
          if (graph::GetSparseEngine() ==
              graph::SparseEngine::kLegacyScatter) {
            ScatterRows(*pattern, pattern->col_indices, pattern->row_indices,
                        [&vals](size_t k) { return vals(k, 0); }, self.grad,
                        &dx);
          } else {
            EngineSpmm(*pattern, /*transpose=*/true, vals.data(), self.grad,
                       &dx);
          }
          AccumulateGrad(px.get(), dx);
        }
      }));
}

}  // namespace adamgnn::autograd
