#include "autograd/sparse_ops.h"

#include <algorithm>
#include <cstdint>

#include "autograd/ops.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace adamgnn::autograd {

using internal::AccumulateGrad;
using internal::NewOpNode;
using internal::Node;
using tensor::Matrix;

namespace {

// Same fan-out gate and chunk cap as the CSR kernels in graph/sparse_matrix.cc.
// Decompositions are pure functions of the shapes so SpMMValues stays
// bitwise-deterministic at every thread count.
constexpr size_t kMinParallelWork = size_t{1} << 20;  // nnz * dense cols
constexpr size_t kEntryGrain = size_t{1} << 12;
constexpr size_t kMaxScatterChunks = 8;

// Gather outputs are invariant to their decomposition (each output element
// or row is produced by one sequential loop), so these grains only bound
// dispatch overhead; mirrors kMaxGatherChunks in graph/sparse_matrix.cc.
constexpr size_t kRowGrain = 256;
constexpr size_t kMaxGatherChunks = 64;

size_t GatherGrain(size_t entries, size_t work) {
  if (work < kMinParallelWork) return entries == 0 ? 1 : entries;
  return kEntryGrain;
}

size_t RowGatherGrain(size_t rows, size_t work) {
  if (work < kMinParallelWork) return rows == 0 ? 1 : rows;
  return std::max(kRowGrain, (rows + kMaxGatherChunks - 1) / kMaxGatherChunks);
}

size_t ScatterGrain(size_t entries, size_t work) {
  if (work < kMinParallelWork) return entries == 0 ? 1 : entries;
  return std::max<size_t>(
      kEntryGrain, (entries + kMaxScatterChunks - 1) / kMaxScatterChunks);
}

// out(row_indices[k], :) += weight(k) * x(col_indices[k], :) for k in
// [0, nnz), scattered through per-chunk partials merged in chunk order.
template <typename WeightFn>
void ScatterRows(const SparsePattern& pattern,
                 const std::vector<size_t>& out_rows,
                 const std::vector<size_t>& in_rows, WeightFn weight,
                 const Matrix& x, Matrix* out) {
  const size_t nnz = pattern.nnz();
  const size_t d = x.cols();
  if (nnz == 0) return;
  const std::vector<util::ChunkRange> chunks =
      util::SplitRange(0, nnz, ScatterGrain(nnz, nnz * d));
  std::vector<Matrix> partials;
  for (size_t ci = 1; ci < chunks.size(); ++ci) {
    partials.emplace_back(out->rows(), d);
  }
  util::ParallelForChunks(chunks.size(), [&](size_t ci) {
    Matrix& dst = ci == 0 ? *out : partials[ci - 1];
    for (size_t k = chunks[ci].begin; k < chunks[ci].end; ++k) {
      const double v = weight(k);
      const double* xr = x.row(in_rows[k]);
      double* orow = dst.row(out_rows[k]);
      for (size_t j = 0; j < d; ++j) orow[j] += v * xr[j];
    }
  });
  for (const Matrix& partial : partials) *out += partial;
}

// Gather counterpart of ScatterRows: identical math and — by replaying the
// legacy entry-chunk summation order — identical bits, without per-chunk
// partial matrices. `groups` holds each output row's entry ids ascending;
// the scatter kernel splits the entry range into chunks of `legacy_grain`
// and merges partials in ascending chunk order, so flushing a per-row
// accumulator into the (zero-initialized) output row whenever the entry id
// crosses a legacy chunk boundary reproduces ((chunk0 + chunk1) + ...) term
// for term. Chunks holding no entry for a row contribute +0.0 partials, and
// x + (+0.0) is bitwise x for every x these sums can produce (a sum started
// at +0.0 is never -0.0), so skipping them changes nothing. Each output row
// is owned by one task: race-free at any thread count.
template <typename WeightFn>
void GatherRows(const SparsePattern::EntryGroups& groups,
                const std::vector<size_t>& in_rows, WeightFn weight,
                const Matrix& x, Matrix* out) {
  const size_t nnz = groups.order.size();
  const size_t d = x.cols();
  if (nnz == 0) return;
  const size_t legacy_grain = ScatterGrain(nnz, nnz * d);
  const bool multi_chunk = legacy_grain < nnz;
  util::ParallelFor(
      0, out->rows(), RowGatherGrain(out->rows(), nnz * d),
      [&](size_t r0, size_t r1) {
        std::vector<double> acc;
        if (multi_chunk) acc.assign(d, 0.0);
        for (size_t r = r0; r < r1; ++r) {
          double* orow = out->row(r);
          const size_t begin = groups.offsets[r];
          const size_t end = groups.offsets[r + 1];
          if (!multi_chunk) {
            for (size_t i = begin; i < end; ++i) {
              const size_t k = groups.order[i];
              const double v = weight(k);
              const double* xr = x.row(in_rows[k]);
              for (size_t j = 0; j < d; ++j) orow[j] += v * xr[j];
            }
            continue;
          }
          size_t current_chunk = SIZE_MAX;
          for (size_t i = begin; i < end; ++i) {
            const size_t k = groups.order[i];
            const size_t chunk = k / legacy_grain;
            if (chunk != current_chunk) {
              if (current_chunk != SIZE_MAX) {
                for (size_t j = 0; j < d; ++j) {
                  orow[j] += acc[j];
                  acc[j] = 0.0;
                }
              }
              current_chunk = chunk;
            }
            const double v = weight(k);
            const double* xr = x.row(in_rows[k]);
            for (size_t j = 0; j < d; ++j) acc[j] += v * xr[j];
          }
          if (current_chunk != SIZE_MAX) {
            for (size_t j = 0; j < d; ++j) {
              orow[j] += acc[j];
              acc[j] = 0.0;
            }
          }
        }
      });
}

// Counting sort of entry ids by `keys`, ids ascending within each group.
std::shared_ptr<const SparsePattern::EntryGroups> BuildGroups(
    const std::vector<size_t>& keys, size_t num_groups) {
  auto g = std::make_shared<SparsePattern::EntryGroups>();
  g->offsets.assign(num_groups + 1, 0);
  for (size_t key : keys) ++g->offsets[key + 1];
  for (size_t i = 1; i <= num_groups; ++i) g->offsets[i] += g->offsets[i - 1];
  g->order.resize(keys.size());
  std::vector<size_t> cursor(g->offsets.begin(), g->offsets.end() - 1);
  for (size_t k = 0; k < keys.size(); ++k) g->order[cursor[keys[k]]++] = k;
  return g;
}

}  // namespace

std::shared_ptr<const SparsePattern::EntryGroups> SparsePattern::RowGroups()
    const {
  if (gcache_ == nullptr) {  // moved-from pattern being reused
    gcache_ = std::make_shared<GroupCache>();
  }
  const std::shared_ptr<GroupCache> cache = gcache_;
  std::lock_guard<std::mutex> lock(cache->mu);
  if (cache->by_row == nullptr) cache->by_row = BuildGroups(row_indices, rows);
  return cache->by_row;
}

std::shared_ptr<const SparsePattern::EntryGroups> SparsePattern::ColGroups()
    const {
  if (gcache_ == nullptr) {
    gcache_ = std::make_shared<GroupCache>();
  }
  const std::shared_ptr<GroupCache> cache = gcache_;
  std::lock_guard<std::mutex> lock(cache->mu);
  if (cache->by_col == nullptr) cache->by_col = BuildGroups(col_indices, cols);
  return cache->by_col;
}

graph::SparseMatrix SparsePattern::WithValues(
    const std::vector<double>& values) const {
  ADAMGNN_CHECK_EQ(values.size(), nnz());
  std::vector<graph::Triplet> t;
  t.reserve(nnz());
  for (size_t k = 0; k < nnz(); ++k) {
    t.push_back({row_indices[k], col_indices[k], values[k]});
  }
  return graph::SparseMatrix::FromTriplets(rows, cols, std::move(t));
}

Variable SpMM(std::shared_ptr<const graph::SparseMatrix> s,
              const Variable& x) {
  ADAMGNN_CHECK(s != nullptr);
  ADAMGNN_CHECK_EQ(s->cols(), x.rows());
  auto px = x.node();
  return Variable::FromNode(
      NewOpNode(s->MultiplyDense(x.value()), {px}, [s, px](Node& self) {
        AccumulateGrad(px.get(), s->TransposeMultiplyDense(self.grad));
      }));
}

Variable SpMMTranspose(std::shared_ptr<const graph::SparseMatrix> s,
                       const Variable& x) {
  ADAMGNN_CHECK(s != nullptr);
  ADAMGNN_CHECK_EQ(s->rows(), x.rows());
  auto px = x.node();
  return Variable::FromNode(NewOpNode(s->TransposeMultiplyDense(x.value()),
                                      {px}, [s, px](Node& self) {
                                        AccumulateGrad(
                                            px.get(),
                                            s->MultiplyDense(self.grad));
                                      }));
}

Matrix SpMMValuesForward(const SparsePattern& pattern, const Matrix& values,
                         const Matrix& x) {
  ADAMGNN_CHECK_EQ(values.rows(), pattern.nnz());
  ADAMGNN_CHECK_EQ(values.cols(), 1u);
  ADAMGNN_CHECK_EQ(pattern.cols, x.rows());
  Matrix out(pattern.rows, x.cols());
  if (graph::GetSparseEngine() == graph::SparseEngine::kLegacyScatter) {
    ScatterRows(pattern, pattern.row_indices, pattern.col_indices,
                [&values](size_t k) { return values(k, 0); }, x, &out);
  } else {
    GatherRows(*pattern.RowGroups(), pattern.col_indices,
               [&values](size_t k) { return values(k, 0); }, x, &out);
  }
  return out;
}

Variable SpMMValues(std::shared_ptr<const SparsePattern> pattern,
                    const Variable& values, const Variable& x) {
  ADAMGNN_CHECK(pattern != nullptr);
  auto pv = values.node();
  auto px = x.node();

  Matrix out = SpMMValuesForward(*pattern, values.value(), x.value());

  return Variable::FromNode(NewOpNode(
      std::move(out), {pv, px}, [pattern, pv, px](Node& self) {
        const size_t d = px->value.cols();
        const size_t nnz = pattern->nnz();
        if (pv->requires_grad) {
          // Gather: dvals(k) is owned by exactly one chunk.
          Matrix dvals(nnz, 1);
          util::ParallelFor(
              0, nnz, GatherGrain(nnz, nnz * d), [&](size_t b, size_t e) {
                for (size_t k = b; k < e; ++k) {
                  const double* g = self.grad.row(pattern->row_indices[k]);
                  const double* xr = px->value.row(pattern->col_indices[k]);
                  double s = 0.0;
                  for (size_t j = 0; j < d; ++j) s += g[j] * xr[j];
                  dvals(k, 0) = s;
                }
              });
          AccumulateGrad(pv.get(), dvals);
        }
        if (px->requires_grad) {
          // dx rows through the transposed pattern: gather per dx row via
          // the cached column groups (legacy: scatter through partials).
          Matrix dx(px->value.rows(), d);
          const Matrix& vals = pv->value;
          if (graph::GetSparseEngine() ==
              graph::SparseEngine::kLegacyScatter) {
            ScatterRows(*pattern, pattern->col_indices, pattern->row_indices,
                        [&vals](size_t k) { return vals(k, 0); }, self.grad,
                        &dx);
          } else {
            GatherRows(*pattern->ColGroups(), pattern->row_indices,
                       [&vals](size_t k) { return vals(k, 0); }, self.grad,
                       &dx);
          }
          AccumulateGrad(px.get(), dx);
        }
      }));
}

}  // namespace adamgnn::autograd
