#include "autograd/sparse_ops.h"

#include <algorithm>

#include "autograd/ops.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace adamgnn::autograd {

using internal::AccumulateGrad;
using internal::NewOpNode;
using internal::Node;
using tensor::Matrix;

namespace {

// Same fan-out gate and chunk cap as the CSR kernels in graph/sparse_matrix.cc.
// Decompositions are pure functions of the shapes so SpMMValues stays
// bitwise-deterministic at every thread count.
constexpr size_t kMinParallelWork = size_t{1} << 20;  // nnz * dense cols
constexpr size_t kEntryGrain = size_t{1} << 12;
constexpr size_t kMaxScatterChunks = 8;

size_t GatherGrain(size_t entries, size_t work) {
  if (work < kMinParallelWork) return entries == 0 ? 1 : entries;
  return kEntryGrain;
}

size_t ScatterGrain(size_t entries, size_t work) {
  if (work < kMinParallelWork) return entries == 0 ? 1 : entries;
  return std::max<size_t>(
      kEntryGrain, (entries + kMaxScatterChunks - 1) / kMaxScatterChunks);
}

// out(row_indices[k], :) += weight(k) * x(col_indices[k], :) for k in
// [0, nnz), scattered through per-chunk partials merged in chunk order.
template <typename WeightFn>
void ScatterRows(const SparsePattern& pattern,
                 const std::vector<size_t>& out_rows,
                 const std::vector<size_t>& in_rows, WeightFn weight,
                 const Matrix& x, Matrix* out) {
  const size_t nnz = pattern.nnz();
  const size_t d = x.cols();
  if (nnz == 0) return;
  const std::vector<util::ChunkRange> chunks =
      util::SplitRange(0, nnz, ScatterGrain(nnz, nnz * d));
  std::vector<Matrix> partials;
  for (size_t ci = 1; ci < chunks.size(); ++ci) {
    partials.emplace_back(out->rows(), d);
  }
  util::ParallelForChunks(chunks.size(), [&](size_t ci) {
    Matrix& dst = ci == 0 ? *out : partials[ci - 1];
    for (size_t k = chunks[ci].begin; k < chunks[ci].end; ++k) {
      const double v = weight(k);
      const double* xr = x.row(in_rows[k]);
      double* orow = dst.row(out_rows[k]);
      for (size_t j = 0; j < d; ++j) orow[j] += v * xr[j];
    }
  });
  for (const Matrix& partial : partials) *out += partial;
}

}  // namespace

graph::SparseMatrix SparsePattern::WithValues(
    const std::vector<double>& values) const {
  ADAMGNN_CHECK_EQ(values.size(), nnz());
  std::vector<graph::Triplet> t;
  t.reserve(nnz());
  for (size_t k = 0; k < nnz(); ++k) {
    t.push_back({row_indices[k], col_indices[k], values[k]});
  }
  return graph::SparseMatrix::FromTriplets(rows, cols, std::move(t));
}

Variable SpMM(std::shared_ptr<const graph::SparseMatrix> s,
              const Variable& x) {
  ADAMGNN_CHECK(s != nullptr);
  ADAMGNN_CHECK_EQ(s->cols(), x.rows());
  auto px = x.node();
  return Variable::FromNode(
      NewOpNode(s->MultiplyDense(x.value()), {px}, [s, px](Node& self) {
        AccumulateGrad(px.get(), s->TransposeMultiplyDense(self.grad));
      }));
}

Variable SpMMTranspose(std::shared_ptr<const graph::SparseMatrix> s,
                       const Variable& x) {
  ADAMGNN_CHECK(s != nullptr);
  ADAMGNN_CHECK_EQ(s->rows(), x.rows());
  auto px = x.node();
  return Variable::FromNode(NewOpNode(s->TransposeMultiplyDense(x.value()),
                                      {px}, [s, px](Node& self) {
                                        AccumulateGrad(
                                            px.get(),
                                            s->MultiplyDense(self.grad));
                                      }));
}

Matrix SpMMValuesForward(const SparsePattern& pattern, const Matrix& values,
                         const Matrix& x) {
  ADAMGNN_CHECK_EQ(values.rows(), pattern.nnz());
  ADAMGNN_CHECK_EQ(values.cols(), 1u);
  ADAMGNN_CHECK_EQ(pattern.cols, x.rows());
  Matrix out(pattern.rows, x.cols());
  ScatterRows(pattern, pattern.row_indices, pattern.col_indices,
              [&values](size_t k) { return values(k, 0); }, x, &out);
  return out;
}

Variable SpMMValues(std::shared_ptr<const SparsePattern> pattern,
                    const Variable& values, const Variable& x) {
  ADAMGNN_CHECK(pattern != nullptr);
  auto pv = values.node();
  auto px = x.node();

  Matrix out = SpMMValuesForward(*pattern, values.value(), x.value());

  return Variable::FromNode(NewOpNode(
      std::move(out), {pv, px}, [pattern, pv, px](Node& self) {
        const size_t d = px->value.cols();
        const size_t nnz = pattern->nnz();
        if (pv->requires_grad) {
          // Gather: dvals(k) is owned by exactly one chunk.
          Matrix dvals(nnz, 1);
          util::ParallelFor(
              0, nnz, GatherGrain(nnz, nnz * d), [&](size_t b, size_t e) {
                for (size_t k = b; k < e; ++k) {
                  const double* g = self.grad.row(pattern->row_indices[k]);
                  const double* xr = px->value.row(pattern->col_indices[k]);
                  double s = 0.0;
                  for (size_t j = 0; j < d; ++j) s += g[j] * xr[j];
                  dvals(k, 0) = s;
                }
              });
          AccumulateGrad(pv.get(), dvals);
        }
        if (px->requires_grad) {
          // Scatter into dx rows through the transposed pattern.
          Matrix dx(px->value.rows(), d);
          const Matrix& vals = pv->value;
          ScatterRows(*pattern, pattern->col_indices, pattern->row_indices,
                      [&vals](size_t k) { return vals(k, 0); }, self.grad,
                      &dx);
          AccumulateGrad(px.get(), dx);
        }
      }));
}

}  // namespace adamgnn::autograd
