#include "autograd/sparse_ops.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace adamgnn::autograd {

using internal::AccumulateGrad;
using internal::NewOpNode;
using internal::Node;
using tensor::Matrix;

graph::SparseMatrix SparsePattern::WithValues(
    const std::vector<double>& values) const {
  ADAMGNN_CHECK_EQ(values.size(), nnz());
  std::vector<graph::Triplet> t;
  t.reserve(nnz());
  for (size_t k = 0; k < nnz(); ++k) {
    t.push_back({row_indices[k], col_indices[k], values[k]});
  }
  return graph::SparseMatrix::FromTriplets(rows, cols, std::move(t));
}

Variable SpMM(std::shared_ptr<const graph::SparseMatrix> s,
              const Variable& x) {
  ADAMGNN_CHECK(s != nullptr);
  ADAMGNN_CHECK_EQ(s->cols(), x.rows());
  auto px = x.node();
  return Variable::FromNode(
      NewOpNode(s->MultiplyDense(x.value()), {px}, [s, px](Node& self) {
        AccumulateGrad(px.get(), s->TransposeMultiplyDense(self.grad));
      }));
}

Variable SpMMTranspose(std::shared_ptr<const graph::SparseMatrix> s,
                       const Variable& x) {
  ADAMGNN_CHECK(s != nullptr);
  ADAMGNN_CHECK_EQ(s->rows(), x.rows());
  auto px = x.node();
  return Variable::FromNode(NewOpNode(s->TransposeMultiplyDense(x.value()),
                                      {px}, [s, px](Node& self) {
                                        AccumulateGrad(
                                            px.get(),
                                            s->MultiplyDense(self.grad));
                                      }));
}

Variable SpMMValues(std::shared_ptr<const SparsePattern> pattern,
                    const Variable& values, const Variable& x) {
  ADAMGNN_CHECK(pattern != nullptr);
  ADAMGNN_CHECK_EQ(values.rows(), pattern->nnz());
  ADAMGNN_CHECK_EQ(values.cols(), 1u);
  ADAMGNN_CHECK_EQ(pattern->cols, x.rows());
  auto pv = values.node();
  auto px = x.node();

  Matrix out(pattern->rows, x.cols());
  for (size_t k = 0; k < pattern->nnz(); ++k) {
    const double v = values.value()(k, 0);
    const double* xr = x.value().row(pattern->col_indices[k]);
    double* orow = out.row(pattern->row_indices[k]);
    for (size_t j = 0; j < x.cols(); ++j) orow[j] += v * xr[j];
  }

  return Variable::FromNode(NewOpNode(
      std::move(out), {pv, px}, [pattern, pv, px](Node& self) {
        const size_t d = px->value.cols();
        if (pv->requires_grad) {
          Matrix dvals(pattern->nnz(), 1);
          for (size_t k = 0; k < pattern->nnz(); ++k) {
            const double* g = self.grad.row(pattern->row_indices[k]);
            const double* xr = px->value.row(pattern->col_indices[k]);
            double s = 0.0;
            for (size_t j = 0; j < d; ++j) s += g[j] * xr[j];
            dvals(k, 0) = s;
          }
          AccumulateGrad(pv.get(), dvals);
        }
        if (px->requires_grad) {
          Matrix dx(px->value.rows(), d);
          for (size_t k = 0; k < pattern->nnz(); ++k) {
            const double v = pv->value(k, 0);
            const double* g = self.grad.row(pattern->row_indices[k]);
            double* dr = dx.row(pattern->col_indices[k]);
            for (size_t j = 0; j < d; ++j) dr[j] += v * g[j];
          }
          AccumulateGrad(px.get(), dx);
        }
      }));
}

}  // namespace adamgnn::autograd
