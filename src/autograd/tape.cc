// Backward(): iterative topological sort + pullback execution.

#include <unordered_set>
#include <vector>

#include "autograd/variable.h"
#include "util/logging.h"

namespace adamgnn::autograd {

void Backward(const Variable& loss) {
  ADAMGNN_CHECK(loss.defined());
  ADAMGNN_CHECK_EQ(loss.value().rows(), 1u);
  ADAMGNN_CHECK_EQ(loss.value().cols(), 1u);

  using internal::Node;

  // Iterative post-order DFS (recursion would overflow on deep graphs).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  Node* root = loss.node().get();
  visited.insert(root);
  stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }

  // Fresh gradients for this pass.
  for (Node* n : order) n->grad_ready = false;

  root->grad = tensor::Matrix(1, 1, 1.0);
  root->grad_ready = true;

  // `order` is post-order (parents before children); walk children-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (!n->backward_fn) continue;
    if (!n->grad_ready) continue;  // not on any path contributing to loss
    n->backward_fn(*n);
  }
}

}  // namespace adamgnn::autograd
