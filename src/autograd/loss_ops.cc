#include "autograd/loss_ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "autograd/ops.h"
#include "tensor/kernels.h"
#include "util/logging.h"

namespace adamgnn::autograd {

using internal::AccumulateGrad;
using internal::NewOpNode;
using internal::Node;
using tensor::Matrix;

namespace {
// Shared numeric floors for the loss kernels. kLogEps keeps log() arguments
// strictly positive (log(1e-300) is finite); kNormEps keeps soft-assignment
// normalizers away from zero when a degenerate embedding collapses every
// kernel weight to 0.
constexpr double kLogEps = 1e-300;
constexpr double kNormEps = 1e-12;
}  // namespace

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels,
                             const std::vector<size_t>& rows) {
  ADAMGNN_CHECK(!rows.empty());
  ADAMGNN_CHECK_EQ(labels.size(), logits.rows());
  const size_t num_classes = logits.cols();
  auto pl = logits.node();

  // Per-selected-row softmax, cached for the pullback.
  Matrix probs(rows.size(), num_classes);
  double loss = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    ADAMGNN_CHECK_LT(r, logits.rows());
    const int label = labels[r];
    ADAMGNN_CHECK_GE(label, 0);
    ADAMGNN_CHECK_LT(static_cast<size_t>(label), num_classes);
    const double* x = logits.value().row(r);
    double mx = x[0];
    for (size_t c = 1; c < num_classes; ++c) mx = std::max(mx, x[c]);
    double z = 0.0;
    for (size_t c = 0; c < num_classes; ++c) {
      probs(i, c) = std::exp(x[c] - mx);
      z += probs(i, c);
    }
    for (size_t c = 0; c < num_classes; ++c) probs(i, c) /= z;
    loss -= std::log(std::max(probs(i, static_cast<size_t>(label)), kLogEps));
  }
  loss /= static_cast<double>(rows.size());

  return Variable::FromNode(NewOpNode(
      Matrix(1, 1, loss), {pl},
      [pl, probs = std::move(probs), labels, rows](Node& self) {
        const double scale = self.grad(0, 0) / static_cast<double>(rows.size());
        Matrix d(pl->value.rows(), pl->value.cols());
        for (size_t i = 0; i < rows.size(); ++i) {
          const size_t r = rows[i];
          double* dr = d.row(r);
          for (size_t c = 0; c < d.cols(); ++c) {
            dr[c] += scale * probs(i, c);
          }
          dr[static_cast<size_t>(labels[r])] -= scale;
        }
        AccumulateGrad(pl.get(), d);
      }));
}

std::vector<int> ArgmaxRows(const Matrix& logits) {
  std::vector<int> out(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const double* x = logits.row(r);
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (x[c] > x[best]) best = c;
    }
    out[r] = static_cast<int>(best);
  }
  return out;
}

Variable BinaryCrossEntropyWithLogits(const Variable& logits,
                                      const std::vector<double>& targets) {
  ADAMGNN_CHECK_EQ(logits.cols(), 1u);
  ADAMGNN_CHECK_EQ(targets.size(), logits.rows());
  ADAMGNN_CHECK(!targets.empty());
  auto pl = logits.node();

  double loss = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    const double x = logits.value()(i, 0);
    const double t = targets[i];
    loss += std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::fabs(x)));
  }
  loss /= static_cast<double>(targets.size());

  return Variable::FromNode(
      NewOpNode(Matrix(1, 1, loss), {pl}, [pl, targets](Node& self) {
        const double scale =
            self.grad(0, 0) / static_cast<double>(targets.size());
        Matrix d(pl->value.rows(), 1);
        for (size_t i = 0; i < targets.size(); ++i) {
          const double x = pl->value(i, 0);
          const double sig =
              x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                       : std::exp(x) / (1.0 + std::exp(x));
          d(i, 0) = scale * (sig - targets[i]);
        }
        AccumulateGrad(pl.get(), d);
      }));
}

Variable MeanSquaredError(const Variable& pred, const Matrix& target) {
  ADAMGNN_CHECK(pred.value().SameShape(target));
  ADAMGNN_CHECK_GT(pred.value().size(), 0u);
  auto pp = pred.node();
  double loss = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    const double diff = pred.value().data()[i] - target.data()[i];
    loss += diff * diff;
  }
  loss /= static_cast<double>(target.size());
  return Variable::FromNode(
      NewOpNode(Matrix(1, 1, loss), {pp}, [pp, target](Node& self) {
        const double scale =
            2.0 * self.grad(0, 0) / static_cast<double>(target.size());
        Matrix d(pp->value.rows(), pp->value.cols());
        for (size_t i = 0; i < target.size(); ++i) {
          d.data()[i] =
              scale * (pp->value.data()[i] - target.data()[i]);
        }
        AccumulateGrad(pp.get(), d);
      }));
}

Variable EdgeDotProduct(const Variable& h,
                        std::vector<std::pair<size_t, size_t>> pairs) {
  ADAMGNN_CHECK(!pairs.empty());
  auto ph = h.node();
  const size_t d = h.cols();
  Matrix out = tensor::EdgeDots(h.value(), pairs);
  return Variable::FromNode(NewOpNode(
      std::move(out), {ph}, [ph, pairs = std::move(pairs), d](Node& self) {
        Matrix dh(ph->value.rows(), d);
        for (size_t e = 0; e < pairs.size(); ++e) {
          const double g = self.grad(e, 0);
          const double* hu = ph->value.row(pairs[e].first);
          const double* hv = ph->value.row(pairs[e].second);
          double* du = dh.row(pairs[e].first);
          double* dv = dh.row(pairs[e].second);
          for (size_t j = 0; j < d; ++j) {
            du[j] += g * hv[j];
            dv[j] += g * hu[j];
          }
        }
        AccumulateGrad(ph.get(), dh);
      }));
}

Variable SelfOptimisationLoss(const Variable& h,
                              const std::vector<size_t>& ego_rows) {
  ADAMGNN_CHECK(!ego_rows.empty());
  auto ph = h.node();
  const size_t n = h.rows();
  const size_t K = ego_rows.size();
  const size_t d = h.cols();
  for (size_t e : ego_rows) ADAMGNN_CHECK_LT(e, n);

  // Soft assignment Q with Student-t kernel (μ = 1):
  //   q_ij = (1 + ||h_j - h_{ego_i}||²)^{-1} / Σ_{i'} ...
  Matrix q(n, K);
  Matrix inv_kernel(n, K);  // (1 + d²)^{-1}, cached for backward
  for (size_t j = 0; j < n; ++j) {
    const double* hj = h.value().row(j);
    double z = 0.0;
    for (size_t i = 0; i < K; ++i) {
      const double* mu = h.value().row(ego_rows[i]);
      double dist2 = 0.0;
      for (size_t c = 0; c < d; ++c) {
        const double diff = hj[c] - mu[c];
        dist2 += diff * diff;
      }
      const double s = 1.0 / (1.0 + dist2);
      inv_kernel(j, i) = s;
      q(j, i) = s;
      z += s;
    }
    // z can collapse to 0 when every distance overflows to inf (all kernel
    // weights underflow); the floor keeps q finite instead of 0/0 = NaN.
    for (size_t i = 0; i < K; ++i) q(j, i) /= std::max(z, kNormEps);
  }

  // Target distribution P: sharpen Q and normalize by soft cluster
  // frequency g_i = Σ_j q_ij. P is a constant w.r.t. gradients (standard
  // self-training practice; Xie et al. 2016).
  std::vector<double> freq(K, 0.0);
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < K; ++i) freq[i] += q(j, i);
  }
  Matrix p(n, K);
  for (size_t j = 0; j < n; ++j) {
    double z = 0.0;
    for (size_t i = 0; i < K; ++i) {
      p(j, i) = q(j, i) * q(j, i) / std::max(freq[i], kNormEps);
      z += p(j, i);
    }
    for (size_t i = 0; i < K; ++i) p(j, i) /= std::max(z, kNormEps);
  }

  // L = (1/n) Σ_j KL(P_j ‖ Q_j).
  double loss = 0.0;
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < K; ++i) {
      if (p(j, i) <= 0.0) continue;
      loss += p(j, i) * std::log(p(j, i) / std::max(q(j, i), kLogEps));
    }
  }
  loss /= static_cast<double>(n);

  return Variable::FromNode(NewOpNode(
      Matrix(1, 1, loss), {ph},
      [ph, q = std::move(q), p = std::move(p),
       inv_kernel = std::move(inv_kernel), ego_rows, n, K, d](Node& self) {
        // ∂L/∂z_j = (2/n) Σ_i s_ij (p_ij − q_ij)(z_j − μ_i), and the
        // opposite sign accumulates into the ego rows (Xie et al. 2016).
        const double scale = 2.0 * self.grad(0, 0) / static_cast<double>(n);
        Matrix dh(ph->value.rows(), d);
        for (size_t j = 0; j < n; ++j) {
          const double* hj = ph->value.row(j);
          double* dj = dh.row(j);
          for (size_t i = 0; i < K; ++i) {
            const double coeff =
                scale * inv_kernel(j, i) * (p(j, i) - q(j, i));
            if (coeff == 0.0) continue;
            const double* mu = ph->value.row(ego_rows[i]);
            double* dmu = dh.row(ego_rows[i]);
            for (size_t c = 0; c < d; ++c) {
              const double diff = hj[c] - mu[c];
              dj[c] += coeff * diff;
              dmu[c] -= coeff * diff;
            }
          }
        }
        AccumulateGrad(ph.get(), dh);
      }));
}

}  // namespace adamgnn::autograd
