// Tape-free reverse-mode automatic differentiation. Each op builds a node in
// a dynamic DAG; Backward() topologically sorts the DAG reachable from a
// scalar loss and runs each node's pullback. This is the engine the paper's
// PyTorch substrate is replaced with; every op's gradient is verified against
// central finite differences in tests/autograd_*.

#ifndef ADAMGNN_AUTOGRAD_VARIABLE_H_
#define ADAMGNN_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace adamgnn::autograd {

class Variable;

namespace internal {

/// One vertex of the autograd DAG. Owned via shared_ptr by Variables and by
/// child nodes (through their parent lists), so a subgraph stays alive as
/// long as anything downstream of it does.
struct Node {
  tensor::Matrix value;
  tensor::Matrix grad;  // allocated lazily by Backward
  bool requires_grad = false;
  bool grad_ready = false;  // grad buffer zeroed for the current backward pass
  std::vector<std::shared_ptr<Node>> parents;
  /// Pullback: given this node's grad, accumulate into parents' grads.
  std::function<void(Node&)> backward_fn;
};

/// Adds `delta` into node->grad. The first delta a node receives becomes its
/// grad outright — copied for lvalues, moved for temporaries — instead of
/// being added into a zero-filled buffer; later deltas accumulate with +=.
/// (Backward walks touch every node's grad exactly once, so skipping the
/// zero-fill-then-add round trip removes two full memory passes per node.)
void AccumulateGrad(Node* node, const tensor::Matrix& delta);
void AccumulateGrad(Node* node, tensor::Matrix&& delta);

}  // namespace internal

/// A handle to a matrix in the autograd DAG. Cheap to copy (shared_ptr).
/// A default-constructed Variable is null; using it in an op aborts.
class Variable {
 public:
  Variable() = default;

  /// A leaf that does not require gradients.
  static Variable Constant(tensor::Matrix value);
  /// A trainable leaf (gradients are computed into grad()).
  static Variable Parameter(tensor::Matrix value);

  bool defined() const { return node_ != nullptr; }
  const tensor::Matrix& value() const;
  /// Mutable access for optimizers; must not be called mid-graph (only on
  /// leaves between forward passes).
  tensor::Matrix& mutable_value();
  /// Gradient after Backward(); zero matrix when never touched.
  const tensor::Matrix& grad() const;
  bool requires_grad() const;

  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }

  /// Internal: wraps an existing node (used by ops).
  static Variable FromNode(std::shared_ptr<internal::Node> node);
  const std::shared_ptr<internal::Node>& node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Runs reverse-mode differentiation from `loss`, which must be 1x1.
/// Gradients of all reachable nodes with requires_grad are freshly computed
/// (prior grad contents are discarded, so there is no need to zero grads
/// between steps).
void Backward(const Variable& loss);

/// True unless a NoGradGuard is alive on this thread. Ops consult this when
/// building the DAG: while disabled, no node retains parents or a pullback,
/// so forward values are computed but the tape is never recorded.
bool GradEnabled();

/// RAII scope that disables gradient recording on the current thread.
/// Nestable; the previous state is restored on destruction. Forward values
/// are bitwise-identical with and without the guard — only the bookkeeping
/// (parent edges, backward closures) is skipped.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace adamgnn::autograd

#endif  // ADAMGNN_AUTOGRAD_VARIABLE_H_
