#ifndef ADAMGNN_TENSOR_ISA_H_
#define ADAMGNN_TENSOR_ISA_H_

#include <string>

// Runtime ISA selection for the kernel backend. The library ships three
// kernel variants compiled in separate translation units (scalar, SSE2,
// AVX2+FMA); at process start the dispatcher probes the CPU and picks the
// widest supported one. `ADAMGNN_ISA=scalar|sse2|avx2` (env) or `--isa`
// (both CLIs) forces a narrower variant for reproducibility across
// machines.
//
// Determinism contract (see DESIGN.md "Kernel dispatch & determinism"):
//   - At a fixed ISA, every kernel is bitwise-identical across thread
//     counts.
//   - Sparse/reduction kernels (SpMM, SpMM^T, SegmentSum, IndexAddRows) and
//     the elementwise primitives avoid FMA contraction entirely, so they are
//     bitwise-identical across ALL ISAs.
//   - Dense GEMM differs on avx2 only through explicit FMA in the
//     microkernel: scalar and sse2 agree bitwise; avx2 agrees within an
//     ULP-bounded tolerance (tests/isa_test.cc).

namespace adamgnn::tensor {

enum class Isa : int {
  kScalar = 0,  // portable C++, no vector intrinsics
  kSse2 = 1,    // 128-bit lanes (baseline on x86-64)
  kAvx2 = 2,    // 256-bit lanes + FMA in the GEMM microkernel
};

// Short lowercase name ("scalar", "sse2", "avx2").
const char* IsaName(Isa isa);

// Parses an ISA name; returns false (and leaves *out untouched) on an
// unknown name.
bool ParseIsa(const std::string& name, Isa* out);

// Widest ISA the running CPU supports. kScalar on non-x86 builds.
Isa BestSupportedIsa();

inline bool IsaSupported(Isa isa) {
  return static_cast<int>(isa) <= static_cast<int>(BestSupportedIsa());
}

// The ISA kernels currently dispatch to. Resolved on first use from
// ADAMGNN_ISA (falling back to BestSupportedIsa on an absent/invalid value,
// with a stderr warning for invalid ones).
Isa ActiveIsa();

// Forces the active ISA process-wide. Returns false (no change) if the CPU
// does not support it — callers forcing an ISA for reproducibility must
// fail loudly rather than silently compute different bits.
bool SetIsa(Isa isa);

// Space-separated CPU feature flags relevant to the backend (e.g.
// "sse2 sse4.1 avx avx2 fma"), for bench JSON provenance.
std::string CpuFeatureString();

}  // namespace adamgnn::tensor

#endif  // ADAMGNN_TENSOR_ISA_H_
