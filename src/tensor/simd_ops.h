#ifndef ADAMGNN_TENSOR_SIMD_OPS_H_
#define ADAMGNN_TENSOR_SIMD_OPS_H_

#include <cstddef>

#include "tensor/isa.h"

// The per-ISA kernel vtable. Each ISA variant (scalar / SSE2 / AVX2+FMA)
// lives in its own translation unit (kernels_scalar.cc / kernels_sse2.cc /
// kernels_avx2.cc) compiled with per-TU flags; every variant's symbols sit
// in an anonymous namespace so nothing compiled with, say, -mavx2 can ever
// be ODR-merged into a path reachable on a non-AVX2 host. The only exported
// surface per TU is its `const SimdOps*` getter below.
//
// Bit contract (see isa.h): axpy / axpy_store / vadd / gather_rows are
// element-wise lane operations with NO fused multiply-add at any ISA, so
// they produce identical bits across scalar/sse2/avx2 AND identical bits to
// a plain serial C++ loop. gemm_rows uses explicit FMA on avx2 only.

namespace adamgnn::tensor {

// One GEMM call: C[i0:i1, :] = A' * B' where A'(i, p) =
// a[i * a_row_stride + p * a_elem_stride] (covers MatMul, MatMulTransA and
// MatMulTransB with one kernel) and B' is available twice: `packed` in
// NR=8 panel-major layout (panel p at packed[p * k * 8], row kk at offset
// kk * 8) for the vector microkernel, and raw `b` with strides for the
// scalar column tail (n % 8 columns).
struct GemmArgs {
  const double* a;
  size_t a_row_stride;
  size_t a_elem_stride;
  const double* b;
  size_t b_row_stride;  // stride along k in the effective B'
  size_t b_col_stride;  // stride along j in the effective B'
  const double* packed;
  size_t k;
  size_t n;
  double* c;
  size_t c_row_stride;  // == n
  // Caller-provided packing scratch for A panels, capacity >=
  // tuning::kGemmKc * round_up_4(i1 - i0) doubles (Workspace-backed).
  double* apack;
};

// One gather call: for each output row r in [r0, r1), fold the row's
// source contributions in ascending entry order:
//   for e in [offsets[r], offsets[r+1]):
//     p   = perm ? perm[e] : e          // entry id indirection
//     src = src_rows ? src_rows[p] : p  // source row in x
//     w_e = w ? w[p] : 1.0
//     out[r, :] (+)= w_e * x[src, :]
// With overwrite=true `out` arrives uninitialized: the first contribution
// stores `0.0 + w_e * x[src, j]` (bitwise what a zero-initialized
// accumulation produces, including -0.0 normalization) and empty rows are
// zero-filled. With overwrite=false contributions accumulate into the
// existing `out` values.
struct GatherSpec {
  const size_t* offsets;
  const size_t* perm;      // nullable
  const size_t* src_rows;  // nullable
  const double* w;         // nullable
  const double* x;
  size_t d;  // row width of x and out
  double* out;
  bool overwrite;
};

struct SimdOps {
  Isa isa;
  const char* name;
  void (*gemm_rows)(const GemmArgs& args, size_t i0, size_t i1);
  void (*gather_rows)(const GatherSpec& spec, size_t r0, size_t r1);
  void (*axpy)(double* y, const double* x, size_t d, double w);  // y += w*x
  void (*axpy_store)(double* y, const double* x, size_t d,
                     double w);                           // y = 0.0 + w*x
  void (*vadd)(double* y, const double* x, size_t d);     // y += x
};

namespace simd {
// One exported getter per ISA translation unit. The sse2/avx2 getters
// always exist; on a toolchain without the matching intrinsics they point
// at portable fallbacks with the same fold order (runtime dispatch never
// selects them there because BestSupportedIsa() probes the CPU).
const SimdOps* ScalarOps();
const SimdOps* Sse2Ops();
const SimdOps* Avx2Ops();
}  // namespace simd

// The vtable for a given ISA / the currently active ISA.
const SimdOps* GetOps(Isa isa);
inline const SimdOps* ActiveOps() { return GetOps(ActiveIsa()); }

}  // namespace adamgnn::tensor

#endif  // ADAMGNN_TENSOR_SIMD_OPS_H_
