// AVX2+FMA (256-bit) kernel variant. See simd_ops.h for the contract.
//
// This TU — and only this TU — is compiled with `-mavx2 -mfma
// -ffp-contract=off` (see src/CMakeLists.txt). `-ffp-contract=off` matters:
// the shared body fragments and the axpy/vadd lanes below are written as
// explicit multiply-then-add, and letting the compiler contract them into
// FMA would silently change bits relative to the scalar/sse2 variants. The
// ONLY fused operations are the explicit _mm256_fmadd_pd calls in the GEMM
// microkernel, which is why dense GEMM is the one kernel where avx2 output
// differs (within an ULP-bounded tolerance) from the other ISAs.
//
// On a toolchain without AVX2 support the portable fallbacks compile
// instead; the runtime dispatcher never selects this variant there.

#include "tensor/simd_ops.h"
#include "tensor/tuning.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define ADAMGNN_HAVE_AVX2_BODY 1
#endif

namespace adamgnn::tensor::simd {

namespace {

#if defined(ADAMGNN_HAVE_AVX2_BODY)

inline void Axpy(double* y, const double* x, size_t d, double w) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m256d p = _mm256_mul_pd(vw, _mm256_loadu_pd(x + j));
    _mm256_storeu_pd(y + j, _mm256_add_pd(_mm256_loadu_pd(y + j), p));
  }
  for (; j < d; ++j) y[j] += w * x[j];
}

inline void AxpyStore(double* y, const double* x, size_t d, double w) {
  const __m256d vw = _mm256_set1_pd(w);
  const __m256d zero = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m256d p = _mm256_mul_pd(vw, _mm256_loadu_pd(x + j));
    _mm256_storeu_pd(y + j, _mm256_add_pd(zero, p));
  }
  for (; j < d; ++j) y[j] = 0.0 + w * x[j];
}

inline void VAdd(double* y, const double* x, size_t d) {
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    _mm256_storeu_pd(
        y + j, _mm256_add_pd(_mm256_loadu_pd(y + j), _mm256_loadu_pd(x + j)));
  }
  for (; j < d; ++j) y[j] += x[j];
}

// 4 rows x 8 columns: 8 ymm accumulators (4 rows x 2 halves), one broadcast
// and two explicit FMAs per (row, k) step.
inline void MicroKernel4x8(const double* ap, const double* bp, size_t kc,
                           double* c0, double* c1, double* c2, double* c3,
                           bool accumulate) {
  __m256d s00, s01, s10, s11, s20, s21, s30, s31;
  if (accumulate) {
    s00 = _mm256_loadu_pd(c0);
    s01 = _mm256_loadu_pd(c0 + 4);
    s10 = _mm256_loadu_pd(c1);
    s11 = _mm256_loadu_pd(c1 + 4);
    s20 = _mm256_loadu_pd(c2);
    s21 = _mm256_loadu_pd(c2 + 4);
    s30 = _mm256_loadu_pd(c3);
    s31 = _mm256_loadu_pd(c3 + 4);
  } else {
    s00 = s01 = _mm256_setzero_pd();
    s10 = s11 = _mm256_setzero_pd();
    s20 = s21 = _mm256_setzero_pd();
    s30 = s31 = _mm256_setzero_pd();
  }
  for (size_t p = 0; p < kc; ++p) {
    const double* b = bp + p * 8;
    const __m256d b0 = _mm256_loadu_pd(b);
    const __m256d b1 = _mm256_loadu_pd(b + 4);
    __m256d x = _mm256_broadcast_sd(ap + p * 4);
    s00 = _mm256_fmadd_pd(x, b0, s00);
    s01 = _mm256_fmadd_pd(x, b1, s01);
    x = _mm256_broadcast_sd(ap + p * 4 + 1);
    s10 = _mm256_fmadd_pd(x, b0, s10);
    s11 = _mm256_fmadd_pd(x, b1, s11);
    x = _mm256_broadcast_sd(ap + p * 4 + 2);
    s20 = _mm256_fmadd_pd(x, b0, s20);
    s21 = _mm256_fmadd_pd(x, b1, s21);
    x = _mm256_broadcast_sd(ap + p * 4 + 3);
    s30 = _mm256_fmadd_pd(x, b0, s30);
    s31 = _mm256_fmadd_pd(x, b1, s31);
  }
  _mm256_storeu_pd(c0, s00);
  _mm256_storeu_pd(c0 + 4, s01);
  _mm256_storeu_pd(c1, s10);
  _mm256_storeu_pd(c1 + 4, s11);
  _mm256_storeu_pd(c2, s20);
  _mm256_storeu_pd(c2 + 4, s21);
  _mm256_storeu_pd(c3, s30);
  _mm256_storeu_pd(c3 + 4, s31);
}

#else  // !ADAMGNN_HAVE_AVX2_BODY: portable fallbacks (never dispatched to).

inline void Axpy(double* y, const double* x, size_t d, double w) {
  for (size_t j = 0; j < d; ++j) y[j] += w * x[j];
}

inline void AxpyStore(double* y, const double* x, size_t d, double w) {
  for (size_t j = 0; j < d; ++j) y[j] = 0.0 + w * x[j];
}

inline void VAdd(double* y, const double* x, size_t d) {
  for (size_t j = 0; j < d; ++j) y[j] += x[j];
}

inline void MicroKernel4x8(const double* ap, const double* bp, size_t kc,
                           double* c0, double* c1, double* c2, double* c3,
                           bool accumulate) {
  double s0[8], s1[8], s2[8], s3[8];
  for (int u = 0; u < 8; ++u) {
    s0[u] = accumulate ? c0[u] : 0.0;
    s1[u] = accumulate ? c1[u] : 0.0;
    s2[u] = accumulate ? c2[u] : 0.0;
    s3[u] = accumulate ? c3[u] : 0.0;
  }
  for (size_t p = 0; p < kc; ++p) {
    const double* b = bp + p * 8;
    const double x0 = ap[p * 4], x1 = ap[p * 4 + 1];
    const double x2 = ap[p * 4 + 2], x3 = ap[p * 4 + 3];
    for (int u = 0; u < 8; ++u) {
      s0[u] += x0 * b[u];
      s1[u] += x1 * b[u];
      s2[u] += x2 * b[u];
      s3[u] += x3 * b[u];
    }
  }
  for (int u = 0; u < 8; ++u) {
    c0[u] = s0[u];
    c1[u] = s1[u];
    c2[u] = s2[u];
    c3[u] = s3[u];
  }
}

#endif  // ADAMGNN_HAVE_AVX2_BODY

#include "tensor/kernels_isa_body.inc"

}  // namespace

const SimdOps* Avx2Ops() {
  static const SimdOps ops = {Isa::kAvx2, "avx2", &GemmRowRange,
                              &GatherRowRange, &Axpy, &AxpyStore,
                              &VAdd};
  return &ops;
}

}  // namespace adamgnn::tensor::simd
