#include "tensor/isa.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "tensor/simd_ops.h"

#if defined(__x86_64__) || defined(__i386__)
#define ADAMGNN_X86 1
#endif

namespace adamgnn::tensor {

namespace {

Isa ProbeBestIsa() {
#if defined(ADAMGNN_X86) && defined(__GNUC__)
  // kAvx2 implies FMA: the AVX2 GEMM microkernel uses _mm256_fmadd_pd, so a
  // CPU with AVX2 but no FMA (none shipping, but CPUID allows it) must fall
  // back to SSE2.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::kAvx2;
  }
  if (__builtin_cpu_supports("sse2")) return Isa::kSse2;
  return Isa::kScalar;
#else
  return Isa::kScalar;
#endif
}

// -1 = not yet resolved. Relaxed ordering is fine: the value is write-once
// from the CLI/env before kernels run, and a torn first-use race would only
// re-resolve the same env value.
std::atomic<int> g_active_isa{-1};

Isa ResolveFromEnv() {
  const Isa best = ProbeBestIsa();
  const char* env = std::getenv("ADAMGNN_ISA");
  if (env == nullptr || env[0] == '\0') return best;
  Isa requested;
  if (!ParseIsa(env, &requested)) {
    std::fprintf(stderr,
                 "warning: ADAMGNN_ISA=%s is not scalar|sse2|avx2; using %s\n",
                 env, IsaName(best));
    return best;
  }
  if (static_cast<int>(requested) > static_cast<int>(best)) {
    std::fprintf(stderr,
                 "warning: ADAMGNN_ISA=%s unsupported on this CPU; using %s\n",
                 env, IsaName(best));
    return best;
  }
  return requested;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseIsa(const std::string& name, Isa* out) {
  if (name == "scalar") {
    *out = Isa::kScalar;
  } else if (name == "sse2") {
    *out = Isa::kSse2;
  } else if (name == "avx2") {
    *out = Isa::kAvx2;
  } else {
    return false;
  }
  return true;
}

Isa BestSupportedIsa() {
  static const Isa best = ProbeBestIsa();
  return best;
}

Isa ActiveIsa() {
  int v = g_active_isa.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(ResolveFromEnv());
    g_active_isa.store(v, std::memory_order_relaxed);
  }
  return static_cast<Isa>(v);
}

bool SetIsa(Isa isa) {
  if (!IsaSupported(isa)) return false;
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

const SimdOps* GetOps(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return simd::ScalarOps();
    case Isa::kSse2:
      return simd::Sse2Ops();
    case Isa::kAvx2:
      return simd::Avx2Ops();
  }
  return simd::ScalarOps();
}

std::string CpuFeatureString() {
  std::string s;
#if defined(ADAMGNN_X86) && defined(__GNUC__)
  const char* kFeatures[] = {"sse2", "sse4.1", "avx", "avx2", "fma", "avx512f"};
  for (const char* f : kFeatures) {
    bool has = false;
    if (std::string(f) == "sse2") has = __builtin_cpu_supports("sse2");
    if (std::string(f) == "sse4.1") has = __builtin_cpu_supports("sse4.1");
    if (std::string(f) == "avx") has = __builtin_cpu_supports("avx");
    if (std::string(f) == "avx2") has = __builtin_cpu_supports("avx2");
    if (std::string(f) == "fma") has = __builtin_cpu_supports("fma");
    if (std::string(f) == "avx512f") has = __builtin_cpu_supports("avx512f");
    if (has) {
      if (!s.empty()) s += ' ';
      s += f;
    }
  }
#else
  s = "generic";
#endif
  return s;
}

}  // namespace adamgnn::tensor
