// Dense row-major matrix of doubles: the numeric workhorse underneath the
// autograd engine and all models. Double precision is chosen deliberately —
// the test suite verifies every gradient against central finite differences,
// which needs ~1e-7 relative accuracy.

#ifndef ADAMGNN_TENSOR_MATRIX_H_
#define ADAMGNN_TENSOR_MATRIX_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tensor/workspace.h"
#include "util/logging.h"
#include "util/random.h"

namespace adamgnn::tensor {

/// A dense rows x cols matrix stored row-major. Copyable and movable; copies
/// are deep. A 1 x n or n x 1 matrix doubles as a vector. Storage is drawn
/// from (and returned to) the thread's bound tensor::Workspace when one
/// exists — a pure recycling layer that never changes contents (see
/// tensor/workspace.h).
class Matrix {
 public:
  /// An empty 0 x 0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows),
        cols_(cols),
        data_(Workspace::AcquireFilled(rows * cols, fill)) {}

  /// Adopts `data` (row-major, size must equal rows*cols).
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  Matrix(const Matrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        data_(Workspace::AcquireCopy(other.data_)) {}
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
    other.rows_ = 0;
    other.cols_ = 0;
  }
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix() { Workspace::Release(std::move(data_)); }

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  /// A rows x cols matrix whose entries are UNSPECIFIED: when a bound
  /// Workspace recycles a buffer, the fill pass is skipped and the entries
  /// hold stale data. Only for kernels that overwrite every entry before the
  /// result escapes; anything else must use Zeros / the filling constructor.
  static Matrix Uninit(size_t rows, size_t cols) {
    return Matrix(rows, cols, Workspace::AcquireUninit(rows * cols));
  }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0);
  }
  /// Identity matrix of size n.
  static Matrix Identity(size_t n);
  /// Entries iid Uniform[lo, hi).
  static Matrix Uniform(size_t rows, size_t cols, double lo, double hi,
                        util::Rng* rng);
  /// Entries iid Normal(0, stddev^2).
  static Matrix Gaussian(size_t rows, size_t cols, double stddev,
                         util::Rng* rng);
  /// 1 x values.size() row vector.
  static Matrix RowVector(const std::vector<double>& values);
  /// values.size() x 1 column vector.
  static Matrix ColVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    ADAMGNN_CHECK_LT(r, rows_);
    ADAMGNN_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    ADAMGNN_CHECK_LT(r, rows_);
    ADAMGNN_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  /// Pointer to the start of row r.
  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // In-place arithmetic (shapes must match for the matrix overloads).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Sets every entry to `value`.
  void Fill(double value);
  /// Sets every entry to f(entry).
  void Apply(const std::function<double(double)>& f);

  /// Sum of all entries.
  double Sum() const;
  /// Max-magnitude entry; 0 for an empty matrix.
  double AbsMax() const;
  /// Frobenius norm.
  double Norm() const;

  /// Extracts row r as a 1 x cols matrix.
  Matrix Row(size_t r) const;
  /// New matrix with rows selected by `indices` (repeats allowed).
  Matrix GatherRows(const std::vector<size_t>& indices) const;
  /// Transposed copy.
  Matrix Transposed() const;

  /// True if all entries are finite (no NaN/inf). Used by training sanity
  /// checks and failure-injection tests.
  bool AllFinite() const;

  /// Human-readable preview for debugging (caps output for large matrices).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Exact shape and entry-wise equality.
bool operator==(const Matrix& a, const Matrix& b);

/// True when shapes match and entries differ by at most `tol`.
bool AllClose(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace adamgnn::tensor

#endif  // ADAMGNN_TENSOR_MATRIX_H_
