// Scratch-buffer arena for the training hot loop. An epoch allocates and
// frees thousands of similarly shaped matrices (activation values, tape
// gradients, optimizer temporaries); Workspace recycles their storage so
// steady-state epochs stop hitting the allocator.
//
// Model: a Workspace is bound to ONE thread with Workspace::Bind (RAII).
// While bound, every tensor::Matrix the thread constructs draws its buffer
// from the workspace's freelist, and every Matrix it destroys returns its
// buffer there. Threads with no binding — the kernel pool's workers in
// particular — fall back to plain vector allocation, so the freelist needs
// no locks: it is only ever touched by its binding thread. Buffers
// themselves may migrate (a matrix built on a worker and destroyed on the
// bound thread donates its buffer; the reverse frees normally).
//
// The freelist is keyed by power-of-two size class, not exact element count:
// a fresh buffer is allocated with its capacity rounded up to the next power
// of two, parked under floor-pow2 of its capacity, and an acquire for n
// doubles draws from class ceil-pow2(n) — so the hyper-level tensors whose
// shapes drift a little from epoch to epoch still reuse each other's storage
// instead of stacking up dead exact-size entries. Total parked capacity is
// capped (see retained_limit); past the cap the oldest parked buffer is
// evicted (freed) first, which keeps an idle arena from holding the peak
// epoch's footprint forever.
//
// Reuse changes where bytes live, never what they hold: acquired buffers are
// resized and refilled (or copied over) before a Matrix exposes them, so
// results are bitwise-identical with the arena on or off.

#ifndef ADAMGNN_TENSOR_WORKSPACE_H_
#define ADAMGNN_TENSOR_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace adamgnn::tensor {

class Workspace {
 public:
  Workspace() = default;
  ~Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Reuse counters (per workspace, maintained by its binding thread).
  struct Stats {
    size_t hits = 0;              // acquires served from the freelist
    size_t misses = 0;            // acquires that fell through to malloc
    size_t evictions = 0;         // parked buffers freed by the cap
    size_t retained_buffers = 0;  // buffers currently parked in the freelist
    size_t retained_doubles = 0;  // total capacity across parked buffers
  };
  Stats stats() const;

  /// Frees every parked buffer (the matrices in flight are unaffected).
  void Clear();

  /// Caps the total capacity (in doubles) the freelist may hold; parking
  /// past the cap evicts oldest-first. Applies from the next Release.
  void set_retained_limit(size_t doubles) { retained_limit_ = doubles; }
  size_t retained_limit() const { return retained_limit_; }

  /// The workspace bound to the calling thread, or nullptr.
  static Workspace* Current();

  /// Process-wide kill switch (default enabled). When disabled, Bind is
  /// inert and Matrix storage behaves exactly as before the arena existed —
  /// the A/B lever for benchmarks.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  /// Binds `ws` to the calling thread for the scope's lifetime; nestable
  /// (restores the previous binding on destruction).
  class Bind {
   public:
    explicit Bind(Workspace* ws);
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    Workspace* prev_;
  };

  // Storage hooks for tensor::Matrix. Unbound/disabled threads get plain
  // vectors; bound threads reuse parked buffers whose size class covers the
  // requested element count.
  static std::vector<double> AcquireFilled(size_t n, double fill);
  static std::vector<double> AcquireCopy(const std::vector<double>& src);
  /// Like AcquireFilled but skips the fill when a recycled buffer is
  /// available: the returned elements then hold whatever the previous owner
  /// left behind. This is the arena-only saving the plain-vector path cannot
  /// match (std::vector always value-initializes), so full-overwrite kernels
  /// acquire through here via Matrix::Uninit. Unbound threads and freelist
  /// misses still return zeroed storage.
  static std::vector<double> AcquireUninit(size_t n);
  static void Release(std::vector<double>&& buf) noexcept;

  /// Default retained-capacity cap: 1 Gi doubles (8 GiB). The cap exists to
  /// stop unbounded idle hoarding, not to bound the training run: it must
  /// sit ABOVE the epoch's tape working set, because a cap below it turns
  /// every release into an eviction (munmap) and every acquire into a miss
  /// (mmap + page faults) — strictly worse than no arena at all. Callers
  /// with tighter memory ceilings lower it per-workspace.
  static constexpr size_t kDefaultRetainedLimit = size_t{1} << 30;

 private:
  struct Parked {
    uint64_t seq;  // global park order, for oldest-first eviction
    std::vector<double> buf;
  };

  /// Pops the most recently parked buffer whose class covers n doubles;
  /// empty vector on miss. A non-empty result has size() == n.
  std::vector<double> TakeBuffer(size_t n);
  void Park(std::vector<double>&& buf) noexcept;
  /// Frees the globally oldest parked buffer. Returns false when nothing is
  /// parked, so Park's drain-to-cap loop terminates even if the retained
  /// accounting were ever to disagree with the freelist contents.
  bool EvictOldest() noexcept;

  // One FIFO deque per power-of-two class: take from the back (warmest),
  // evict from the front (oldest within the class; the globally oldest is
  // found by comparing front seqs across the few dozen live classes).
  // Invariant: no deque in the map is ever empty — every pop erases the
  // bucket when it empties it (debug-asserted in EvictOldest).
  std::unordered_map<size_t, std::deque<Parked>> free_;
  size_t retained_doubles_ = 0;
  size_t retained_buffers_ = 0;  // incremental; == sum of free_ deque sizes
  size_t retained_limit_ = kDefaultRetainedLimit;
  uint64_t next_seq_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace adamgnn::tensor

#endif  // ADAMGNN_TENSOR_WORKSPACE_H_
