// Dense linear-algebra kernels over Matrix. These are the non-differentiable
// primitives; the autograd layer composes them into differentiable ops.
//
// Threading: the MatMul variants, elementwise maps, SoftmaxRows, and the
// segment reductions run on the shared pool in util/thread_pool.h. Results
// are bitwise-identical at every thread count (ADAMGNN_NUM_THREADS /
// util::SetNumThreads), including the serial threads == 1 fallback: either
// the decomposition is a pure function of the operand shapes, or (GEMM and
// the engine-path reductions) every decomposition produces the same
// per-element fold order, so consulting the pool size for strategy
// selection cannot change bits.
//
// ISA dispatch: the inner loops run through the runtime-selected SIMD
// backend (tensor/isa.h, ADAMGNN_ISA=scalar|sse2|avx2). Sparse/segment
// kernels are bitwise-identical across all ISAs; the MatMul variants are
// bitwise-identical between scalar and sse2, while avx2 uses explicit FMA
// and differs within an ULP-bounded tolerance.

#ifndef ADAMGNN_TENSOR_KERNELS_H_
#define ADAMGNN_TENSOR_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/matrix.h"

namespace adamgnn::tensor {

/// C = A * B. Shapes: (m,k) x (k,n) -> (m,n).
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B. Shapes: (k,m) x (k,n) -> (m,n). Avoids materializing A^T.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// C = A * B^T. Shapes: (m,k) x (n,k) -> (m,n). Avoids materializing B^T.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Elementwise sum / difference / product (shapes must match).
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix CwiseMul(const Matrix& a, const Matrix& b);

/// a * scalar.
Matrix Scale(const Matrix& a, double scalar);

/// Adds a 1 x cols row vector to every row of a.
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);
/// Multiplies row r of a by col(r, 0); col is rows x 1.
Matrix MulColBroadcast(const Matrix& a, const Matrix& col);

/// Horizontal concatenation [a | b]; row counts must match.
Matrix ConcatCols(const Matrix& a, const Matrix& b);
/// Vertical concatenation [a ; b]; column counts must match.
Matrix ConcatRows(const Matrix& a, const Matrix& b);

/// Column sums as a 1 x cols matrix.
Matrix ColSum(const Matrix& a);
/// Row sums as a rows x 1 matrix.
Matrix RowSum(const Matrix& a);
/// Row means as a rows x 1 matrix.
Matrix RowMean(const Matrix& a);
/// Per-row maximum as rows x 1.
Matrix RowMax(const Matrix& a);

/// Numerically stable row-wise softmax. Requires cols > 0 (same contract as
/// RowMax; a row-wise reduction over zero columns is undefined).
Matrix SoftmaxRows(const Matrix& a);

/// Elementwise maps.
Matrix Relu(const Matrix& a);
Matrix LeakyRelu(const Matrix& a, double slope);
Matrix Sigmoid(const Matrix& a);
Matrix Tanh(const Matrix& a);
Matrix Exp(const Matrix& a);
/// Elementwise natural log. Inputs are clamped to >= 1e-300 first, so zeros
/// and negatives from degenerate inputs yield a large-but-finite negative
/// value instead of -inf/NaN that would silently poison training.
Matrix Log(const Matrix& a);

/// Sum over segments: out(seg[i], :) += a(i, :). out has num_segments rows.
/// Every segment id must be < num_segments.
Matrix SegmentSum(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments);

/// Mean over segments; empty segments yield zero rows.
Matrix SegmentMean(const Matrix& a, const std::vector<size_t>& segments,
                   size_t num_segments);

/// Indexed row accumulation: out(index[i], :) += a(i, :), out has num_rows
/// rows. Bitwise-identical to the plain serial ascending-i loop at every
/// thread count and strategy; under the gather engine large inputs run
/// segment-grouped and row-parallel instead (the backward of a row gather,
/// the forward of a row scatter), picked adaptively per call (see
/// tensor/tuning.h). Every index must be < num_rows.
Matrix IndexAddRows(const Matrix& a, const std::vector<size_t>& index,
                    size_t num_rows);

/// Columnwise max over segments; empty segments yield zero rows. When
/// `argmax` is non-null it is resized to num_segments * a.cols() and
/// argmax[s * cols + j] records the input row owning the max of column j in
/// segment s (-1 for empty segments). Ties keep the first-seen row.
Matrix SegmentMax(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments, std::vector<int64_t>* argmax = nullptr);

/// Per-segment softmax over an (m x 1) score column: within each segment the
/// entries are exponentiated (max-shifted for stability) and normalized to
/// sum to one. Every segment id must be < num_segments.
Matrix SegmentSoftmax(const Matrix& scores, const std::vector<size_t>& segments,
                      size_t num_segments);

/// Pairwise row dot products: out(e, 0) = h.row(pairs[e].first) ·
/// h.row(pairs[e].second). Both endpoints must be < h.rows().
Matrix EdgeDots(const Matrix& h,
                const std::vector<std::pair<size_t, size_t>>& pairs);

}  // namespace adamgnn::tensor

#endif  // ADAMGNN_TENSOR_KERNELS_H_
