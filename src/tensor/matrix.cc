#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace adamgnn::tensor {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  ADAMGNN_CHECK_EQ(data_.size(), rows * cols);
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this != &other) {
    if (data_.size() == other.data_.size()) {
      std::copy(other.data_.begin(), other.data_.end(), data_.begin());
    } else {
      Workspace::Release(std::move(data_));
      data_ = Workspace::AcquireCopy(other.data_);
    }
    rows_ = other.rows_;
    cols_ = other.cols_;
  }
  return *this;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this != &other) {
    // Park the displaced buffer instead of letting vector move-assign free
    // it — the whole point of the arena is that it comes back next epoch.
    Workspace::Release(std::move(data_));
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
  }
  return *this;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Uniform(size_t rows, size_t cols, double lo, double hi,
                       util::Rng* rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng->NextUniform(lo, hi);
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, double stddev,
                        util::Rng* rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = stddev * rng->NextGaussian();
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  return Matrix(1, values.size(), values);
}

Matrix Matrix::ColVector(const std::vector<double>& values) {
  return Matrix(values.size(), 1, values);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  ADAMGNN_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  ADAMGNN_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Apply(const std::function<double(double)>& f) {
  for (auto& x : data_) x = f(x);
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

double Matrix::AbsMax() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Matrix::Norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

Matrix Matrix::Row(size_t r) const {
  ADAMGNN_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  std::copy(row(r), row(r) + cols_, out.data());
  return out;
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  Matrix out = Matrix::Uninit(indices.size(), cols_);  // every row copied below
  for (size_t i = 0; i < indices.size(); ++i) {
    ADAMGNN_CHECK_LT(indices[i], rows_);
    std::copy(row(indices[i]), row(indices[i]) + cols_, out.row(i));
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out = Matrix::Uninit(cols_, rows_);  // every entry written below
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

bool Matrix::AllFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  size_t show_r = std::min<size_t>(rows_, static_cast<size_t>(max_rows));
  size_t show_c = std::min<size_t>(cols_, static_cast<size_t>(max_cols));
  for (size_t r = 0; r < show_r; ++r) {
    os << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < show_c; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    if (show_c < cols_) os << ", ...";
    os << "]";
    if (r + 1 < show_r) os << "\n";
  }
  if (show_r < rows_) os << "\n ...";
  os << "]";
  return os.str();
}

bool operator==(const Matrix& a, const Matrix& b) {
  if (!a.SameShape(b)) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (!a.SameShape(b)) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

}  // namespace adamgnn::tensor
