#include "tensor/engine.h"

#include <atomic>

namespace adamgnn::tensor {

namespace {
std::atomic<SparseEngine> g_sparse_engine{SparseEngine::kCachedGather};
}  // namespace

void SetSparseEngine(SparseEngine engine) {
  g_sparse_engine.store(engine, std::memory_order_relaxed);
}

SparseEngine GetSparseEngine() {
  return g_sparse_engine.load(std::memory_order_relaxed);
}

}  // namespace adamgnn::tensor
