#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "tensor/engine.h"
#include "tensor/isa.h"
#include "tensor/simd_ops.h"
#include "tensor/tuning.h"
#include "tensor/workspace.h"
#include "util/thread_pool.h"

namespace adamgnn::tensor {

namespace {

// Elementwise thresholds and grains. These decompositions are pure
// functions of the operand shapes — never of the thread count — so results
// are bitwise-identical at any ADAMGNN_NUM_THREADS (see util/thread_pool.h).
// GEMM and the gather-engine reductions additionally consult
// util::EffectiveParallelism() via tensor/tuning.h, which is safe because
// their bits are invariant to the decomposition.
constexpr size_t kElemGrain = size_t{1} << 14;  // elements per chunk

// Inputs at or below kLogTiny (including zero and negatives from degenerate
// cluster assignments) are clamped before std::log so downstream training
// never sees NaN/-inf. log(1e-300) ~= -690.8.
constexpr double kLogTiny = 1e-300;

size_t ElemGrain(size_t total) {
  return total < tuning::kMinParallelElems ? (total == 0 ? 1 : total)
                                           : kElemGrain;
}

size_t RowGrain(size_t rows, size_t cols) {
  const size_t total = rows * cols;
  if (total < tuning::kMinParallelElems) return rows == 0 ? 1 : rows;
  const size_t per_chunk = kElemGrain / (cols == 0 ? 1 : cols);
  return per_chunk < 1 ? 1 : per_chunk;
}

// Per-kernel-variant dispatch counters: which ISA the GEMMs ran at, and
// which strategy the adaptive reductions picked.
obs::Counter& GemmDispatchCounter(Isa isa) {
  static obs::Counter* scalar_calls = new obs::Counter("kernel.gemm.scalar");
  static obs::Counter* sse2_calls = new obs::Counter("kernel.gemm.sse2");
  static obs::Counter* avx2_calls = new obs::Counter("kernel.gemm.avx2");
  switch (isa) {
    case Isa::kSse2:
      return *sse2_calls;
    case Isa::kAvx2:
      return *avx2_calls;
    default:
      return *scalar_calls;
  }
}

obs::Counter& SegmentStrategyCounter(tuning::ReduceStrategy strategy) {
  static obs::Counter* serial_calls =
      new obs::Counter("kernel.segment_reduce.serial");
  static obs::Counter* gather_calls =
      new obs::Counter("kernel.segment_reduce.gather");
  return strategy == tuning::ReduceStrategy::kSerialScatter ? *serial_calls
                                                            : *gather_calls;
}

// Writes c[i] = f(a[i]) into an uninitialized result: one read pass and one
// write pass, versus copy-then-apply's two of each. Entry-wise, so the
// parallel split cannot affect the values.
template <typename F>
void ParallelApplyInto(const Matrix& a, Matrix* c, F f) {
  const double* s = a.data();
  double* d = c->data();
  util::ParallelFor(0, a.size(), ElemGrain(a.size()),
                    [s, d, f](size_t b, size_t e) {
                      for (size_t i = b; i < e; ++i) d[i] = f(s[i]);
                    });
}

// Writes c[i] = f(a[i], b[i]) into an uninitialized result.
template <typename F>
void ParallelCombineInto(const Matrix& a, const Matrix& b, Matrix* c, F f) {
  const double* sa = a.data();
  const double* sb = b.data();
  double* d = c->data();
  util::ParallelFor(0, a.size(), ElemGrain(a.size()),
                    [sa, sb, d, f](size_t b2, size_t e) {
                      for (size_t i = b2; i < e; ++i) d[i] = f(sa[i], sb[i]);
                    });
}

// ---------------------------------------------------------------------------
// GEMM dispatch. The microkernels live in the per-ISA translation units
// (kernels_{scalar,sse2,avx2}.cc, shared body in kernels_isa_body.inc);
// this layer packs B once, fans C rows across the pool, and hands each
// chunk a Workspace-backed A-packing scratch. Per output element the fold
// is a single accumulator over ascending k (K blocks accumulate in order),
// so results are bitwise-identical at every thread count for a fixed ISA;
// scalar and sse2 agree bitwise, avx2 differs only via its explicit
// in-kernel FMA (ULP-bounded, see tests/isa_test.cc).
// ---------------------------------------------------------------------------

// Packs b's 8-column panels into panel-major layout: panel j/8 occupies
// k * 8 consecutive doubles, row p at offset p * 8. Leftover columns
// (n % 8) are read from b directly by the scalar tail.
std::vector<double> PackPanels(const Matrix& b) {
  const size_t k = b.rows(), n = b.cols();
  const size_t num_panels = n / 8;
  std::vector<double> packed(num_panels * k * 8);
  // Serial: packing is O(k*n) against the multiply's O(m*k*n).
  for (size_t panel = 0; panel < num_panels; ++panel) {
    double* dst = packed.data() + panel * k * 8;
    const size_t j = panel * 8;
    for (size_t p = 0; p < k; ++p) {
      const double* bp = b.row(p) + j;
      for (int u = 0; u < 8; ++u) dst[p * 8 + u] = bp[u];
    }
  }
  return packed;
}

// Same layout for MatMulTransB, where the effective B'(p, j) = b(j, p):
// panel row p holds b(8 * panel + u, p) for u in [0, 8).
std::vector<double> PackPanelsTransB(const Matrix& b) {
  const size_t k = b.cols(), n = b.rows();
  const size_t num_panels = n / 8;
  std::vector<double> packed(num_panels * k * 8);
  for (size_t panel = 0; panel < num_panels; ++panel) {
    double* dst = packed.data() + panel * k * 8;
    const size_t j = panel * 8;
    for (int u = 0; u < 8; ++u) {
      const double* br = b.row(j + u);
      for (size_t p = 0; p < k; ++p) dst[p * 8 + u] = br[p];
    }
  }
  return packed;
}

// Fans C rows across the pool; each chunk gets its own A-packing scratch
// (groups of 4 rows interleaved, one K block at a time — see
// kernels_isa_body.inc). proto.apack is filled in per chunk.
void GemmDispatch(const GemmArgs& proto, size_t m, size_t k, size_t n) {
  const SimdOps* ops = ActiveOps();
  GemmDispatchCounter(ops->isa).Add();
  const size_t grain =
      tuning::MatMulGrain(m, k, n, util::EffectiveParallelism());
  util::ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
    const size_t kc = k < tuning::kGemmKc ? k : tuning::kGemmKc;
    const size_t rows4 = (i1 - i0 + 3) & ~size_t{3};
    std::vector<double> apack = Workspace::AcquireUninit(kc * rows4);
    GemmArgs args = proto;
    args.apack = apack.data();
    ops->gemm_rows(args, i0, i1);
    Workspace::Release(std::move(apack));
  });
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.rows());
  Matrix c = Matrix::Uninit(a.rows(), b.cols());  // kernels store every entry
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return c;
  if (k == 0) {  // K-blocked kernel never stores with an empty inner dim
    std::fill(c.data(), c.data() + c.size(), 0.0);
    return c;
  }
  const std::vector<double> packed = PackPanels(b);
  // A(i, p) at a[i * k + p]; B'(p, j) = b[p * n + j].
  GemmDispatch({a.data(), k, 1, b.data(), n, 1, packed.data(), k, n, c.data(),
                n, nullptr},
               m, k, n);
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix c = Matrix::Uninit(a.cols(), b.cols());  // kernels store every entry
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return c;
  if (k == 0) {
    std::fill(c.data(), c.data() + c.size(), 0.0);
    return c;
  }
  const std::vector<double> packed = PackPanels(b);
  // (A^T)(i, p) = A(p, i) at a[p * m + i]: row stride 1, element stride m.
  GemmDispatch({a.data(), 1, m, b.data(), n, 1, packed.data(), k, n, c.data(),
                n, nullptr},
               m, k, n);
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  Matrix c = Matrix::Uninit(a.rows(), b.rows());  // kernels store every entry
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (m == 0 || n == 0) return c;
  if (k == 0) {
    std::fill(c.data(), c.data() + c.size(), 0.0);
    return c;
  }
  const std::vector<double> packed = PackPanelsTransB(b);
  // (B^T)(p, j) = B(j, p) at b[j * k + p]: k stride 1, column stride k.
  GemmDispatch({a.data(), k, 1, b.data(), 1, k, packed.data(), k, n, c.data(),
                n, nullptr},
               m, k, n);
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelCombineInto(a, b, &c, [](double x, double y) { return x + y; });
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelCombineInto(a, b, &c, [](double x, double y) { return x - y; });
  return c;
}

Matrix CwiseMul(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelCombineInto(a, b, &c, [](double x, double y) { return x * y; });
  return c;
}

Matrix Scale(const Matrix& a, double scalar) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [scalar](double x) { return x * scalar; });
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  ADAMGNN_CHECK_EQ(row.rows(), 1u);
  ADAMGNN_CHECK_EQ(row.cols(), a.cols());
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  const double* rv = row.data();
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        const double* ar = a.row(r);
                        double* cr = c.row(r);
                        for (size_t j = 0; j < c.cols(); ++j) {
                          cr[j] = ar[j] + rv[j];
                        }
                      }
                    });
  return c;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  ADAMGNN_CHECK_EQ(col.cols(), 1u);
  ADAMGNN_CHECK_EQ(col.rows(), a.rows());
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        const double s = col(r, 0);
                        const double* ar = a.row(r);
                        double* cr = c.row(r);
                        for (size_t j = 0; j < c.cols(); ++j) {
                          cr[j] = ar[j] * s;
                        }
                      }
                    });
  return c;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix c = Matrix::Uninit(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), c.row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), c.row(r) + a.cols());
  }
  return c;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  Matrix c = Matrix::Uninit(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), c.data());
  std::copy(b.data(), b.data() + b.size(), c.data() + a.size());
  return c;
}

Matrix ColSum(const Matrix& a) {
  Matrix c(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    for (size_t j = 0; j < a.cols(); ++j) c.data()[j] += ar[j];
  }
  return c;
}

Matrix RowSum(const Matrix& a) {
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += ar[j];
    c(r, 0) = s;
  }
  return c;
}

Matrix RowMean(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c = RowSum(a);
  c *= 1.0 / static_cast<double>(a.cols());
  return c;
}

Matrix RowMax(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    double m = ar[0];
    for (size_t j = 1; j < a.cols(); ++j) m = std::max(m, ar[j]);
    c(r, 0) = m;
  }
  return c;
}

Matrix SoftmaxRows(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        const double* ar = a.row(r);
                        double* cr = c.row(r);
                        double m = ar[0];
                        for (size_t j = 1; j < c.cols(); ++j) {
                          m = std::max(m, ar[j]);
                        }
                        double z = 0.0;
                        for (size_t j = 0; j < c.cols(); ++j) {
                          cr[j] = std::exp(ar[j] - m);
                          z += cr[j];
                        }
                        for (size_t j = 0; j < c.cols(); ++j) cr[j] /= z;
                      }
                    });
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [](double x) { return x > 0.0 ? x : 0.0; });
  return c;
}

Matrix LeakyRelu(const Matrix& a, double slope) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c,
                    [slope](double x) { return x > 0.0 ? x : slope * x; });
  return c;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [](double x) {
    // Split on sign for numeric stability at large |x|.
    if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
    double e = std::exp(x);
    return e / (1.0 + e);
  });
  return c;
}

Matrix Tanh(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [](double x) { return std::tanh(x); });
  return c;
}

Matrix Exp(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [](double x) { return std::exp(x); });
  return c;
}

Matrix Log(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(
      a, &c, [](double x) { return std::log(std::max(x, kLogTiny)); });
  return c;
}

namespace {

/// Counting-sorts row indices by segment: `row_ids` ends up grouped by
/// segment (CSR-style `offsets`), ascending within each group. Also bounds-
/// checks every segment id. The two output vectors are plain allocations —
/// index data must not churn the bound Workspace.
void GroupRowsBySegment(const std::vector<size_t>& segments,
                        size_t num_segments, std::vector<size_t>* offsets,
                        std::vector<size_t>* row_ids) {
  offsets->assign(num_segments + 1, 0);
  for (size_t s : segments) {
    ADAMGNN_CHECK_LT(s, num_segments);
    ++(*offsets)[s + 1];
  }
  for (size_t s = 0; s < num_segments; ++s) (*offsets)[s + 1] += (*offsets)[s];
  row_ids->resize(segments.size());
  std::vector<size_t> cursor(offsets->begin(), offsets->end() - 1);
  for (size_t r = 0; r < segments.size(); ++r) {
    (*row_ids)[cursor[segments[r]]++] = r;
  }
}

/// Engine-path segment reduction with adaptive strategy selection. Both
/// strategies fold each output row's sources in ascending source-row order
/// through the per-ISA lane primitives (no FMA at any ISA), so they produce
/// IDENTICAL bits — to each other, to the plain serial scatter loop, and
/// across scalar/sse2/avx2. The choice is pure speed:
///   kSerialScatter  — one ascending pass, no grouping, no pool dispatch;
///                     wins when the pool cannot help or the work is small.
///   kParallelGather — counting-sort rows by segment, then one pool task
///                     per output-row range; no partial accumulators are
///                     allocated, zeroed, or merged.
Matrix SegmentReduceEngine(const Matrix& a, const std::vector<size_t>& segments,
                           size_t num_segments) {
  const size_t rows = a.rows(), cols = a.cols();
  const SimdOps* ops = ActiveOps();
  const tuning::ReduceStrategy strategy = tuning::ChooseSegmentReduce(
      rows, cols, num_segments, util::EffectiveParallelism());
  SegmentStrategyCounter(strategy).Add();
  if (strategy == tuning::ReduceStrategy::kSerialScatter) {
    Matrix c(num_segments, cols);  // zero-init: scatter accumulates in place
    for (size_t r = 0; r < rows; ++r) {
      ADAMGNN_CHECK_LT(segments[r], num_segments);
      ops->vadd(c.row(segments[r]), a.row(r), cols);
    }
    return c;
  }
  Matrix c = Matrix::Uninit(num_segments, cols);  // gather writes all rows
  std::vector<size_t> offsets, row_ids;
  GroupRowsBySegment(segments, num_segments, &offsets, &row_ids);
  const GatherSpec spec{offsets.data(), nullptr, row_ids.data(), nullptr,
                        a.data(),       cols,    c.data(),       true};
  util::ParallelFor(
      0, num_segments, tuning::SegmentGrain(num_segments),
      [&](size_t s0, size_t s1) { ops->gather_rows(spec, s0, s1); });
  return c;
}

}  // namespace

Matrix SegmentSum(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments) {
  ADAMGNN_CHECK_EQ(segments.size(), a.rows());
  const size_t rows = a.rows(), cols = a.cols();
  if (rows == 0) return Matrix(num_segments, cols);
  if (GetSparseEngine() == SparseEngine::kCachedGather) {
    return SegmentReduceEngine(a, segments, num_segments);
  }
  Matrix c(num_segments, cols);
  // Legacy scatter with per-chunk partial accumulators, merged in ascending
  // chunk order. The decomposition depends only on `rows`, so the merged
  // result is bitwise-identical at every thread count; a single chunk (the
  // common small case) accumulates straight into c exactly like the serial
  // loop. NOTE: at multi-chunk shapes this summation order differs from the
  // engine's plain ascending fold — the engines agree to tolerance, not
  // bitwise (see DESIGN.md "Kernel dispatch & determinism").
  const size_t grain = tuning::LegacySegmentScatterGrain(rows);
  const std::vector<util::ChunkRange> chunks =
      util::SplitRange(0, rows, grain);
  std::vector<Matrix> partials;
  partials.reserve(chunks.size() > 0 ? chunks.size() - 1 : 0);
  for (size_t ci = 1; ci < chunks.size(); ++ci) {
    partials.emplace_back(num_segments, cols);
  }
  util::ParallelForChunks(chunks.size(), [&](size_t ci) {
    Matrix& dst = ci == 0 ? c : partials[ci - 1];
    for (size_t r = chunks[ci].begin; r < chunks[ci].end; ++r) {
      ADAMGNN_CHECK_LT(segments[r], num_segments);
      double* cs = dst.row(segments[r]);
      const double* ar = a.row(r);
      for (size_t j = 0; j < cols; ++j) cs[j] += ar[j];
    }
  });
  for (const Matrix& partial : partials) c += partial;
  return c;
}

Matrix IndexAddRows(const Matrix& a, const std::vector<size_t>& index,
                    size_t num_rows) {
  ADAMGNN_CHECK_EQ(index.size(), a.rows());
  const size_t rows = a.rows(), cols = a.cols();
  if (rows == 0) return Matrix(num_rows, cols);
  // The engine path is bitwise-identical to the serial loop below at every
  // strategy (ascending-source left fold either way), so this branch only
  // changes speed.
  if (GetSparseEngine() == SparseEngine::kCachedGather) {
    return SegmentReduceEngine(a, index, num_rows);
  }
  Matrix c(num_rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    ADAMGNN_CHECK_LT(index[i], num_rows);
    double* cs = c.row(index[i]);
    const double* ar = a.row(i);
    for (size_t j = 0; j < cols; ++j) cs[j] += ar[j];
  }
  return c;
}

Matrix SegmentMean(const Matrix& a, const std::vector<size_t>& segments,
                   size_t num_segments) {
  Matrix c = SegmentSum(a, segments, num_segments);
  std::vector<double> counts(num_segments, 0.0);
  for (size_t s : segments) counts[s] += 1.0;
  for (size_t s = 0; s < num_segments; ++s) {
    if (counts[s] == 0.0) continue;
    double inv = 1.0 / counts[s];
    double* cs = c.row(s);
    for (size_t j = 0; j < c.cols(); ++j) cs[j] *= inv;
  }
  return c;
}

Matrix SegmentMax(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments, std::vector<int64_t>* argmax) {
  ADAMGNN_CHECK_EQ(segments.size(), a.rows());
  const size_t d = a.cols();
  Matrix out(num_segments, d);
  std::vector<int64_t> local;
  std::vector<int64_t>& am = argmax != nullptr ? *argmax : local;
  am.assign(num_segments * d, -1);
  for (size_t i = 0; i < segments.size(); ++i) {
    const size_t s = segments[i];
    ADAMGNN_CHECK_LT(s, num_segments);
    const double* ar = a.row(i);
    for (size_t j = 0; j < d; ++j) {
      int64_t& owner = am[s * d + j];
      if (owner < 0 || ar[j] > out(s, j)) {
        out(s, j) = ar[j];
        owner = static_cast<int64_t>(i);
      }
    }
  }
  return out;
}

Matrix SegmentSoftmax(const Matrix& scores, const std::vector<size_t>& segments,
                      size_t num_segments) {
  ADAMGNN_CHECK_EQ(scores.cols(), 1u);
  ADAMGNN_CHECK_EQ(segments.size(), scores.rows());
  const size_t m = scores.rows();
  std::vector<double> seg_max(num_segments,
                              -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < m; ++i) {
    ADAMGNN_CHECK_LT(segments[i], num_segments);
    seg_max[segments[i]] = std::max(seg_max[segments[i]], scores(i, 0));
  }
  std::vector<double> seg_z(num_segments, 0.0);
  Matrix out(m, 1);
  for (size_t i = 0; i < m; ++i) {
    out(i, 0) = std::exp(scores(i, 0) - seg_max[segments[i]]);
    seg_z[segments[i]] += out(i, 0);
  }
  for (size_t i = 0; i < m; ++i) out(i, 0) /= seg_z[segments[i]];
  return out;
}

Matrix EdgeDots(const Matrix& h,
                const std::vector<std::pair<size_t, size_t>>& pairs) {
  const size_t d = h.cols();
  Matrix out(pairs.size(), 1);
  for (size_t e = 0; e < pairs.size(); ++e) {
    ADAMGNN_CHECK_LT(pairs[e].first, h.rows());
    ADAMGNN_CHECK_LT(pairs[e].second, h.rows());
    const double* hu = h.row(pairs[e].first);
    const double* hv = h.row(pairs[e].second);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += hu[j] * hv[j];
    out(e, 0) = s;
  }
  return out;
}

}  // namespace adamgnn::tensor
