#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/engine.h"
#include "util/thread_pool.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace adamgnn::tensor {

namespace {

// Parallelization thresholds and grains. Every decomposition below is a pure
// function of the operand shapes — never of the thread count — so results
// are bitwise-identical at any ADAMGNN_NUM_THREADS (see util/thread_pool.h).
constexpr size_t kMinParallelFlops = size_t{1} << 20;  // matmul fan-out gate
constexpr size_t kMatMulRowGrain = 32;                 // C rows per chunk
constexpr size_t kMinParallelElems = size_t{1} << 15;  // elementwise gate
constexpr size_t kElemGrain = size_t{1} << 14;         // elements per chunk
constexpr size_t kMinScatterRows = size_t{1} << 12;    // segment-scatter gate
constexpr size_t kMaxScatterChunks = 8;  // bounds partial-accumulator memory

// Inputs at or below kLogTiny (including zero and negatives from degenerate
// cluster assignments) are clamped before std::log so downstream training
// never sees NaN/-inf. log(1e-300) ~= -690.8.
constexpr double kLogTiny = 1e-300;

size_t MatMulGrain(size_t m, size_t k, size_t n) {
  // Serial (single chunk) below the fan-out gate: pool dispatch costs more
  // than the multiply itself for the small matrices that dominate autograd.
  if (m * k * n < kMinParallelFlops) return m;
  return kMatMulRowGrain;
}

size_t ElemGrain(size_t total) {
  return total < kMinParallelElems ? (total == 0 ? 1 : total) : kElemGrain;
}

size_t RowGrain(size_t rows, size_t cols) {
  const size_t total = rows * cols;
  if (total < kMinParallelElems) return rows == 0 ? 1 : rows;
  const size_t per_chunk = kElemGrain / (cols == 0 ? 1 : cols);
  return per_chunk < 1 ? 1 : per_chunk;
}

// Grain for scatter-style kernels that merge per-chunk partial accumulators:
// capped at kMaxScatterChunks chunks so partial memory stays bounded.
size_t ScatterGrain(size_t rows) {
  const size_t by_cap = (rows + kMaxScatterChunks - 1) / kMaxScatterChunks;
  return std::max(kMinScatterRows, by_cap);
}

// Writes c[i] = f(a[i]) into an uninitialized result: one read pass and one
// write pass, versus copy-then-apply's two of each. Entry-wise, so the
// parallel split cannot affect the values.
template <typename F>
void ParallelApplyInto(const Matrix& a, Matrix* c, F f) {
  const double* s = a.data();
  double* d = c->data();
  util::ParallelFor(0, a.size(), ElemGrain(a.size()),
                    [s, d, f](size_t b, size_t e) {
                      for (size_t i = b; i < e; ++i) d[i] = f(s[i]);
                    });
}

// Writes c[i] = f(a[i], b[i]) into an uninitialized result.
template <typename F>
void ParallelCombineInto(const Matrix& a, const Matrix& b, Matrix* c, F f) {
  const double* sa = a.data();
  const double* sb = b.data();
  double* d = c->data();
  util::ParallelFor(0, a.size(), ElemGrain(a.size()),
                    [sa, sb, d, f](size_t b2, size_t e) {
                      for (size_t i = b2; i < e; ++i) d[i] = f(sa[i], sb[i]);
                    });
}

// ---------------------------------------------------------------------------
// Register-blocked GEMM micro-kernels.
//
// Every variant computes each output element with a single accumulator over
// ascending p, so all code paths (vector panel, scalar tails, any chunk
// boundary) agree bitwise for the same inputs.
// ---------------------------------------------------------------------------

// Packs b's 8-column panels into panel-major layout: panel j/8 occupies
// k * 8 consecutive doubles, row p at offset p * 8. Leftover columns
// (n % 8) are read from b directly by the scalar tail.
std::vector<double> PackPanels(const Matrix& b) {
  const size_t k = b.rows(), n = b.cols();
  const size_t num_panels = n / 8;
  std::vector<double> packed(num_panels * k * 8);
  // Serial: packing is O(k*n) against the multiply's O(m*k*n).
  for (size_t panel = 0; panel < num_panels; ++panel) {
    double* dst = packed.data() + panel * k * 8;
    const size_t j = panel * 8;
    for (size_t p = 0; p < k; ++p) {
      const double* bp = b.row(p) + j;
      for (int u = 0; u < 8; ++u) dst[p * 8 + u] = bp[u];
    }
  }
  return packed;
}

#if defined(__SSE2__)
// 4 rows x 8 columns: 16 SSE accumulators against one packed k x 8 panel.
inline void MicroKernel4x8(const double* a0, const double* a1,
                           const double* a2, const double* a3, size_t a_stride,
                           const double* panel, size_t k, double* c0,
                           double* c1, double* c2, double* c3) {
  __m128d s00 = _mm_setzero_pd(), s01 = _mm_setzero_pd(),
          s02 = _mm_setzero_pd(), s03 = _mm_setzero_pd();
  __m128d s10 = _mm_setzero_pd(), s11 = _mm_setzero_pd(),
          s12 = _mm_setzero_pd(), s13 = _mm_setzero_pd();
  __m128d s20 = _mm_setzero_pd(), s21 = _mm_setzero_pd(),
          s22 = _mm_setzero_pd(), s23 = _mm_setzero_pd();
  __m128d s30 = _mm_setzero_pd(), s31 = _mm_setzero_pd(),
          s32 = _mm_setzero_pd(), s33 = _mm_setzero_pd();
  for (size_t p = 0; p < k; ++p) {
    const double* bp = panel + p * 8;
    const __m128d b0 = _mm_loadu_pd(bp);
    const __m128d b1 = _mm_loadu_pd(bp + 2);
    const __m128d b2 = _mm_loadu_pd(bp + 4);
    const __m128d b3 = _mm_loadu_pd(bp + 6);
    __m128d x = _mm_set1_pd(a0[p * a_stride]);
    s00 = _mm_add_pd(s00, _mm_mul_pd(x, b0));
    s01 = _mm_add_pd(s01, _mm_mul_pd(x, b1));
    s02 = _mm_add_pd(s02, _mm_mul_pd(x, b2));
    s03 = _mm_add_pd(s03, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(a1[p * a_stride]);
    s10 = _mm_add_pd(s10, _mm_mul_pd(x, b0));
    s11 = _mm_add_pd(s11, _mm_mul_pd(x, b1));
    s12 = _mm_add_pd(s12, _mm_mul_pd(x, b2));
    s13 = _mm_add_pd(s13, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(a2[p * a_stride]);
    s20 = _mm_add_pd(s20, _mm_mul_pd(x, b0));
    s21 = _mm_add_pd(s21, _mm_mul_pd(x, b1));
    s22 = _mm_add_pd(s22, _mm_mul_pd(x, b2));
    s23 = _mm_add_pd(s23, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(a3[p * a_stride]);
    s30 = _mm_add_pd(s30, _mm_mul_pd(x, b0));
    s31 = _mm_add_pd(s31, _mm_mul_pd(x, b1));
    s32 = _mm_add_pd(s32, _mm_mul_pd(x, b2));
    s33 = _mm_add_pd(s33, _mm_mul_pd(x, b3));
  }
  _mm_storeu_pd(c0, s00);
  _mm_storeu_pd(c0 + 2, s01);
  _mm_storeu_pd(c0 + 4, s02);
  _mm_storeu_pd(c0 + 6, s03);
  _mm_storeu_pd(c1, s10);
  _mm_storeu_pd(c1 + 2, s11);
  _mm_storeu_pd(c1 + 4, s12);
  _mm_storeu_pd(c1 + 6, s13);
  _mm_storeu_pd(c2, s20);
  _mm_storeu_pd(c2 + 2, s21);
  _mm_storeu_pd(c2 + 4, s22);
  _mm_storeu_pd(c2 + 6, s23);
  _mm_storeu_pd(c3, s30);
  _mm_storeu_pd(c3 + 2, s31);
  _mm_storeu_pd(c3 + 4, s32);
  _mm_storeu_pd(c3 + 6, s33);
}
#else
// Portable fallback with the same accumulation order.
inline void MicroKernel4x8(const double* a0, const double* a1,
                           const double* a2, const double* a3, size_t a_stride,
                           const double* panel, size_t k, double* c0,
                           double* c1, double* c2, double* c3) {
  double s0[8] = {0}, s1[8] = {0}, s2[8] = {0}, s3[8] = {0};
  for (size_t p = 0; p < k; ++p) {
    const double* bp = panel + p * 8;
    const double x0 = a0[p * a_stride], x1 = a1[p * a_stride];
    const double x2 = a2[p * a_stride], x3 = a3[p * a_stride];
    for (int u = 0; u < 8; ++u) {
      s0[u] += x0 * bp[u];
      s1[u] += x1 * bp[u];
      s2[u] += x2 * bp[u];
      s3[u] += x3 * bp[u];
    }
  }
  for (int u = 0; u < 8; ++u) {
    c0[u] = s0[u];
    c1[u] = s1[u];
    c2[u] = s2[u];
    c3[u] = s3[u];
  }
}
#endif

// One row x one packed 8-column panel.
inline void MicroKernel1x8(const double* a0, size_t a_stride,
                           const double* panel, size_t k, double* c0) {
  double s[8] = {0};
  for (size_t p = 0; p < k; ++p) {
    const double* bp = panel + p * 8;
    const double x = a0[p * a_stride];
    for (int u = 0; u < 8; ++u) s[u] += x * bp[u];
  }
  for (int u = 0; u < 8; ++u) c0[u] = s[u];
}

// Computes C rows [i0, i1) of A(m,k) * B(k,n) against panel-packed B.
// a_row(i) must return a pointer whose p-th element (stride a_stride) is
// A(i, p) — this lets MatMulTransA reuse the kernel with A stored (k, m).
template <typename ARow>
void MatMulRowRange(ARow a_row, size_t a_stride, const Matrix& b,
                    const std::vector<double>& packed, Matrix* c, size_t i0,
                    size_t i1) {
  const size_t k = b.rows(), n = b.cols();
  const size_t num_panels = n / 8;
  size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = a_row(i);
    const double* a1 = a_row(i + 1);
    const double* a2 = a_row(i + 2);
    const double* a3 = a_row(i + 3);
    for (size_t panel = 0; panel < num_panels; ++panel) {
      const double* pk = packed.data() + panel * k * 8;
      const size_t j = panel * 8;
      MicroKernel4x8(a0, a1, a2, a3, a_stride, pk, k, c->row(i) + j,
                     c->row(i + 1) + j, c->row(i + 2) + j, c->row(i + 3) + j);
    }
    for (size_t j = num_panels * 8; j < n; ++j) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (size_t p = 0; p < k; ++p) {
        const double bpj = b.row(p)[j];
        s0 += a0[p * a_stride] * bpj;
        s1 += a1[p * a_stride] * bpj;
        s2 += a2[p * a_stride] * bpj;
        s3 += a3[p * a_stride] * bpj;
      }
      (*c)(i, j) = s0;
      (*c)(i + 1, j) = s1;
      (*c)(i + 2, j) = s2;
      (*c)(i + 3, j) = s3;
    }
  }
  for (; i < i1; ++i) {
    const double* a0 = a_row(i);
    for (size_t panel = 0; panel < num_panels; ++panel) {
      MicroKernel1x8(a0, a_stride, packed.data() + panel * k * 8, k,
                     c->row(i) + panel * 8);
    }
    for (size_t j = num_panels * 8; j < n; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += a0[p * a_stride] * b.row(p)[j];
      (*c)(i, j) = s;
    }
  }
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.rows());
  Matrix c = Matrix::Uninit(a.rows(), b.cols());  // kernels store every entry
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return c;
  const std::vector<double> packed = PackPanels(b);
  util::ParallelFor(0, m, MatMulGrain(m, k, n), [&](size_t i0, size_t i1) {
    // A(i, p) lives at a.row(i)[p]: stride 1 along p.
    MatMulRowRange([&a](size_t i) { return a.row(i); }, 1, b, packed, &c, i0,
                   i1);
  });
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix c = Matrix::Uninit(a.cols(), b.cols());  // kernels store every entry
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return c;
  const std::vector<double> packed = PackPanels(b);
  util::ParallelFor(0, m, MatMulGrain(m, k, n), [&](size_t i0, size_t i1) {
    // (A^T)(i, p) = A(p, i) lives at a.data()[p * m + i]: stride m along p.
    const double* base = a.data();
    MatMulRowRange([base](size_t i) { return base + i; }, m, b, packed, &c,
                   i0, i1);
  });
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  Matrix c = Matrix::Uninit(a.rows(), b.rows());  // kernels store every entry
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (m == 0 || n == 0) return c;
  util::ParallelFor(0, m, MatMulGrain(m, k, n), [&](size_t i0, size_t i1) {
    // Row-row dot products; 1x4 register tile reuses each a load 4 times.
    size_t i = i0;
    for (; i < i1; ++i) {
      const double* ai = a.row(i);
      double* ci = c.row(i);
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const double* b0 = b.row(j);
        const double* b1 = b.row(j + 1);
        const double* b2 = b.row(j + 2);
        const double* b3 = b.row(j + 3);
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (size_t p = 0; p < k; ++p) {
          const double x = ai[p];
          s0 += x * b0[p];
          s1 += x * b1[p];
          s2 += x * b2[p];
          s3 += x * b3[p];
        }
        ci[j] = s0;
        ci[j + 1] = s1;
        ci[j + 2] = s2;
        ci[j + 3] = s3;
      }
      for (; j < n; ++j) {
        const double* bj = b.row(j);
        double s = 0.0;
        for (size_t p = 0; p < k; ++p) s += ai[p] * bj[p];
        ci[j] = s;
      }
    }
  });
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelCombineInto(a, b, &c, [](double x, double y) { return x + y; });
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelCombineInto(a, b, &c, [](double x, double y) { return x - y; });
  return c;
}

Matrix CwiseMul(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelCombineInto(a, b, &c, [](double x, double y) { return x * y; });
  return c;
}

Matrix Scale(const Matrix& a, double scalar) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [scalar](double x) { return x * scalar; });
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  ADAMGNN_CHECK_EQ(row.rows(), 1u);
  ADAMGNN_CHECK_EQ(row.cols(), a.cols());
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  const double* rv = row.data();
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        const double* ar = a.row(r);
                        double* cr = c.row(r);
                        for (size_t j = 0; j < c.cols(); ++j) {
                          cr[j] = ar[j] + rv[j];
                        }
                      }
                    });
  return c;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  ADAMGNN_CHECK_EQ(col.cols(), 1u);
  ADAMGNN_CHECK_EQ(col.rows(), a.rows());
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        const double s = col(r, 0);
                        const double* ar = a.row(r);
                        double* cr = c.row(r);
                        for (size_t j = 0; j < c.cols(); ++j) {
                          cr[j] = ar[j] * s;
                        }
                      }
                    });
  return c;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix c = Matrix::Uninit(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), c.row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), c.row(r) + a.cols());
  }
  return c;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  Matrix c = Matrix::Uninit(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), c.data());
  std::copy(b.data(), b.data() + b.size(), c.data() + a.size());
  return c;
}

Matrix ColSum(const Matrix& a) {
  Matrix c(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    for (size_t j = 0; j < a.cols(); ++j) c.data()[j] += ar[j];
  }
  return c;
}

Matrix RowSum(const Matrix& a) {
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += ar[j];
    c(r, 0) = s;
  }
  return c;
}

Matrix RowMean(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c = RowSum(a);
  c *= 1.0 / static_cast<double>(a.cols());
  return c;
}

Matrix RowMax(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    double m = ar[0];
    for (size_t j = 1; j < a.cols(); ++j) m = std::max(m, ar[j]);
    c(r, 0) = m;
  }
  return c;
}

Matrix SoftmaxRows(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        const double* ar = a.row(r);
                        double* cr = c.row(r);
                        double m = ar[0];
                        for (size_t j = 1; j < c.cols(); ++j) {
                          m = std::max(m, ar[j]);
                        }
                        double z = 0.0;
                        for (size_t j = 0; j < c.cols(); ++j) {
                          cr[j] = std::exp(ar[j] - m);
                          z += cr[j];
                        }
                        for (size_t j = 0; j < c.cols(); ++j) cr[j] /= z;
                      }
                    });
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [](double x) { return x > 0.0 ? x : 0.0; });
  return c;
}

Matrix LeakyRelu(const Matrix& a, double slope) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c,
                    [slope](double x) { return x > 0.0 ? x : slope * x; });
  return c;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [](double x) {
    // Split on sign for numeric stability at large |x|.
    if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
    double e = std::exp(x);
    return e / (1.0 + e);
  });
  return c;
}

Matrix Tanh(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [](double x) { return std::tanh(x); });
  return c;
}

Matrix Exp(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(a, &c, [](double x) { return std::exp(x); });
  return c;
}

Matrix Log(const Matrix& a) {
  Matrix c = Matrix::Uninit(a.rows(), a.cols());
  ParallelApplyInto(
      a, &c, [](double x) { return std::log(std::max(x, kLogTiny)); });
  return c;
}

namespace {

/// Counting-sorts row indices by segment: `row_ids` ends up grouped by
/// segment (CSR-style `offsets`), ascending within each group. Also bounds-
/// checks every segment id. The two output vectors are plain allocations —
/// index data must not churn the bound Workspace.
void GroupRowsBySegment(const std::vector<size_t>& segments,
                        size_t num_segments, std::vector<size_t>* offsets,
                        std::vector<size_t>* row_ids) {
  offsets->assign(num_segments + 1, 0);
  for (size_t s : segments) {
    ADAMGNN_CHECK_LT(s, num_segments);
    ++(*offsets)[s + 1];
  }
  for (size_t s = 0; s < num_segments; ++s) (*offsets)[s + 1] += (*offsets)[s];
  row_ids->resize(segments.size());
  std::vector<size_t> cursor(offsets->begin(), offsets->end() - 1);
  for (size_t r = 0; r < segments.size(); ++r) {
    (*row_ids)[cursor[segments[r]]++] = r;
  }
}

/// Row-parallel gather form of segment summation: each output row is
/// produced by one sequential pass over its (ascending) source rows, so no
/// partial accumulators are allocated, zeroed, or merged. `emulate_grain`
/// sets the summation order replayed bitwise: rows are accumulated into a
/// scratch register file that is flushed into the output row at every
/// legacy chunk boundary (chunk = r / emulate_grain), which reproduces the
/// scatter kernel's chunk-partial merge order exactly; a grain >= rows
/// replays the plain serial loop. Flushes of empty chunks are skipped: they
/// would add +0.0, and a +0.0-rooted running sum can never be -0.0, so
/// x + (+0.0) is bitwise x.
void SegmentGatherInto(const Matrix& a, const std::vector<size_t>& offsets,
                       const std::vector<size_t>& row_ids,
                       size_t emulate_grain, Matrix* c) {
  const size_t num_segments = c->rows(), cols = c->cols();
  const size_t seg_grain =
      std::max<size_t>(256, (num_segments + kMaxScatterChunks * 8 - 1) /
                                (kMaxScatterChunks * 8));
  util::ParallelFor(0, num_segments, seg_grain, [&](size_t sb, size_t se) {
    std::vector<double> scratch(cols);
    for (size_t s = sb; s < se; ++s) {
      const size_t begin = offsets[s], end = offsets[s + 1];
      double* cs = c->row(s);
      // `c` arrives uninitialized: rows with no sources are zeroed here,
      // and the FIRST flush below stores instead of accumulating. The
      // stored value equals the legacy 0.0 + scratch bitwise because the
      // scratch sum is +0.0-rooted and so can never be -0.0.
      if (begin == end) {
        std::fill(cs, cs + cols, 0.0);
        continue;
      }
      std::fill(scratch.begin(), scratch.end(), 0.0);
      bool first_flush = true;
      size_t chunk = row_ids[begin] / emulate_grain;
      for (size_t i = begin; i < end; ++i) {
        const size_t r = row_ids[i];
        const size_t rc = r / emulate_grain;
        if (rc != chunk) {
          for (size_t j = 0; j < cols; ++j) {
            cs[j] = first_flush ? scratch[j] : cs[j] + scratch[j];
          }
          first_flush = false;
          std::fill(scratch.begin(), scratch.end(), 0.0);
          chunk = rc;
        }
        const double* ar = a.row(r);
        for (size_t j = 0; j < cols; ++j) scratch[j] += ar[j];
      }
      for (size_t j = 0; j < cols; ++j) {
        cs[j] = first_flush ? scratch[j] : cs[j] + scratch[j];
      }
    }
  });
}

}  // namespace

Matrix SegmentSum(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments) {
  ADAMGNN_CHECK_EQ(segments.size(), a.rows());
  const size_t rows = a.rows(), cols = a.cols();
  if (rows == 0) return Matrix(num_segments, cols);
  const size_t grain = ScatterGrain(rows);
  if (rows > grain && GetSparseEngine() == SparseEngine::kCachedGather) {
    Matrix c = Matrix::Uninit(num_segments, cols);  // gather writes all rows
    // Gather engine: group rows by segment, then one pass per output row,
    // replaying the scatter kernel's chunk merge order bitwise (see
    // SegmentGatherInto). Skips the legacy path's up-to-7 partial matrices
    // of num_segments x cols — the dominant cost on allocation-bound boxes.
    std::vector<size_t> offsets, row_ids;
    GroupRowsBySegment(segments, num_segments, &offsets, &row_ids);
    SegmentGatherInto(a, offsets, row_ids, grain, &c);
    return c;
  }
  Matrix c(num_segments, cols);
  // Scatter with per-chunk partial accumulators, merged in ascending chunk
  // order. The decomposition depends only on `rows`, so the merged result is
  // bitwise-identical at every thread count; a single chunk (the common
  // small case) accumulates straight into c exactly like the serial loop.
  const std::vector<util::ChunkRange> chunks =
      util::SplitRange(0, rows, grain);
  std::vector<Matrix> partials;
  partials.reserve(chunks.size() > 0 ? chunks.size() - 1 : 0);
  for (size_t ci = 1; ci < chunks.size(); ++ci) {
    partials.emplace_back(num_segments, cols);
  }
  util::ParallelForChunks(chunks.size(), [&](size_t ci) {
    Matrix& dst = ci == 0 ? c : partials[ci - 1];
    for (size_t r = chunks[ci].begin; r < chunks[ci].end; ++r) {
      ADAMGNN_CHECK_LT(segments[r], num_segments);
      double* cs = dst.row(segments[r]);
      const double* ar = a.row(r);
      for (size_t j = 0; j < cols; ++j) cs[j] += ar[j];
    }
  });
  for (const Matrix& partial : partials) c += partial;
  return c;
}

Matrix IndexAddRows(const Matrix& a, const std::vector<size_t>& index,
                    size_t num_rows) {
  ADAMGNN_CHECK_EQ(index.size(), a.rows());
  const size_t rows = a.rows(), cols = a.cols();
  if (rows == 0) return Matrix(num_rows, cols);
  // Historically a serial ascending-i scatter; the gather engine reproduces
  // that exact summation order (emulate_grain >= rows means "one chunk" =
  // the serial left-fold) while parallelizing across output rows. Worth the
  // grouping pass only when the work is large enough to parallelize.
  if (rows * cols >= kMinParallelElems &&
      GetSparseEngine() == SparseEngine::kCachedGather) {
    Matrix c = Matrix::Uninit(num_rows, cols);  // gather writes all rows
    std::vector<size_t> offsets, row_ids;
    GroupRowsBySegment(index, num_rows, &offsets, &row_ids);
    SegmentGatherInto(a, offsets, row_ids, /*emulate_grain=*/rows, &c);
    return c;
  }
  Matrix c(num_rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    ADAMGNN_CHECK_LT(index[i], num_rows);
    double* cs = c.row(index[i]);
    const double* ar = a.row(i);
    for (size_t j = 0; j < cols; ++j) cs[j] += ar[j];
  }
  return c;
}

Matrix SegmentMean(const Matrix& a, const std::vector<size_t>& segments,
                   size_t num_segments) {
  Matrix c = SegmentSum(a, segments, num_segments);
  std::vector<double> counts(num_segments, 0.0);
  for (size_t s : segments) counts[s] += 1.0;
  for (size_t s = 0; s < num_segments; ++s) {
    if (counts[s] == 0.0) continue;
    double inv = 1.0 / counts[s];
    double* cs = c.row(s);
    for (size_t j = 0; j < c.cols(); ++j) cs[j] *= inv;
  }
  return c;
}

Matrix SegmentMax(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments, std::vector<int64_t>* argmax) {
  ADAMGNN_CHECK_EQ(segments.size(), a.rows());
  const size_t d = a.cols();
  Matrix out(num_segments, d);
  std::vector<int64_t> local;
  std::vector<int64_t>& am = argmax != nullptr ? *argmax : local;
  am.assign(num_segments * d, -1);
  for (size_t i = 0; i < segments.size(); ++i) {
    const size_t s = segments[i];
    ADAMGNN_CHECK_LT(s, num_segments);
    const double* ar = a.row(i);
    for (size_t j = 0; j < d; ++j) {
      int64_t& owner = am[s * d + j];
      if (owner < 0 || ar[j] > out(s, j)) {
        out(s, j) = ar[j];
        owner = static_cast<int64_t>(i);
      }
    }
  }
  return out;
}

Matrix SegmentSoftmax(const Matrix& scores, const std::vector<size_t>& segments,
                      size_t num_segments) {
  ADAMGNN_CHECK_EQ(scores.cols(), 1u);
  ADAMGNN_CHECK_EQ(segments.size(), scores.rows());
  const size_t m = scores.rows();
  std::vector<double> seg_max(num_segments,
                              -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < m; ++i) {
    ADAMGNN_CHECK_LT(segments[i], num_segments);
    seg_max[segments[i]] = std::max(seg_max[segments[i]], scores(i, 0));
  }
  std::vector<double> seg_z(num_segments, 0.0);
  Matrix out(m, 1);
  for (size_t i = 0; i < m; ++i) {
    out(i, 0) = std::exp(scores(i, 0) - seg_max[segments[i]]);
    seg_z[segments[i]] += out(i, 0);
  }
  for (size_t i = 0; i < m; ++i) out(i, 0) /= seg_z[segments[i]];
  return out;
}

Matrix EdgeDots(const Matrix& h,
                const std::vector<std::pair<size_t, size_t>>& pairs) {
  const size_t d = h.cols();
  Matrix out(pairs.size(), 1);
  for (size_t e = 0; e < pairs.size(); ++e) {
    ADAMGNN_CHECK_LT(pairs[e].first, h.rows());
    ADAMGNN_CHECK_LT(pairs[e].second, h.rows());
    const double* hu = h.row(pairs[e].first);
    const double* hv = h.row(pairs[e].second);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += hu[j] * hv[j];
    out(e, 0) = s;
  }
  return out;
}

}  // namespace adamgnn::tensor
