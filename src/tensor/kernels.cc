#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/thread_pool.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace adamgnn::tensor {

namespace {

// Parallelization thresholds and grains. Every decomposition below is a pure
// function of the operand shapes — never of the thread count — so results
// are bitwise-identical at any ADAMGNN_NUM_THREADS (see util/thread_pool.h).
constexpr size_t kMinParallelFlops = size_t{1} << 20;  // matmul fan-out gate
constexpr size_t kMatMulRowGrain = 32;                 // C rows per chunk
constexpr size_t kMinParallelElems = size_t{1} << 15;  // elementwise gate
constexpr size_t kElemGrain = size_t{1} << 14;         // elements per chunk
constexpr size_t kMinScatterRows = size_t{1} << 12;    // segment-scatter gate
constexpr size_t kMaxScatterChunks = 8;  // bounds partial-accumulator memory

// Inputs at or below kLogTiny (including zero and negatives from degenerate
// cluster assignments) are clamped before std::log so downstream training
// never sees NaN/-inf. log(1e-300) ~= -690.8.
constexpr double kLogTiny = 1e-300;

size_t MatMulGrain(size_t m, size_t k, size_t n) {
  // Serial (single chunk) below the fan-out gate: pool dispatch costs more
  // than the multiply itself for the small matrices that dominate autograd.
  if (m * k * n < kMinParallelFlops) return m;
  return kMatMulRowGrain;
}

size_t ElemGrain(size_t total) {
  return total < kMinParallelElems ? (total == 0 ? 1 : total) : kElemGrain;
}

size_t RowGrain(size_t rows, size_t cols) {
  const size_t total = rows * cols;
  if (total < kMinParallelElems) return rows == 0 ? 1 : rows;
  const size_t per_chunk = kElemGrain / (cols == 0 ? 1 : cols);
  return per_chunk < 1 ? 1 : per_chunk;
}

// Grain for scatter-style kernels that merge per-chunk partial accumulators:
// capped at kMaxScatterChunks chunks so partial memory stays bounded.
size_t ScatterGrain(size_t rows) {
  const size_t by_cap = (rows + kMaxScatterChunks - 1) / kMaxScatterChunks;
  return std::max(kMinScatterRows, by_cap);
}

template <typename F>
void ParallelApplyInPlace(Matrix* m, F f) {
  double* d = m->data();
  util::ParallelFor(0, m->size(), ElemGrain(m->size()),
                    [d, f](size_t b, size_t e) {
                      for (size_t i = b; i < e; ++i) d[i] = f(d[i]);
                    });
}

template <typename F>
void ParallelCombineInPlace(Matrix* m, const Matrix& other, F f) {
  double* d = m->data();
  const double* o = other.data();
  util::ParallelFor(0, m->size(), ElemGrain(m->size()),
                    [d, o, f](size_t b, size_t e) {
                      for (size_t i = b; i < e; ++i) d[i] = f(d[i], o[i]);
                    });
}

// ---------------------------------------------------------------------------
// Register-blocked GEMM micro-kernels.
//
// Every variant computes each output element with a single accumulator over
// ascending p, so all code paths (vector panel, scalar tails, any chunk
// boundary) agree bitwise for the same inputs.
// ---------------------------------------------------------------------------

// Packs b's 8-column panels into panel-major layout: panel j/8 occupies
// k * 8 consecutive doubles, row p at offset p * 8. Leftover columns
// (n % 8) are read from b directly by the scalar tail.
std::vector<double> PackPanels(const Matrix& b) {
  const size_t k = b.rows(), n = b.cols();
  const size_t num_panels = n / 8;
  std::vector<double> packed(num_panels * k * 8);
  // Serial: packing is O(k*n) against the multiply's O(m*k*n).
  for (size_t panel = 0; panel < num_panels; ++panel) {
    double* dst = packed.data() + panel * k * 8;
    const size_t j = panel * 8;
    for (size_t p = 0; p < k; ++p) {
      const double* bp = b.row(p) + j;
      for (int u = 0; u < 8; ++u) dst[p * 8 + u] = bp[u];
    }
  }
  return packed;
}

#if defined(__SSE2__)
// 4 rows x 8 columns: 16 SSE accumulators against one packed k x 8 panel.
inline void MicroKernel4x8(const double* a0, const double* a1,
                           const double* a2, const double* a3, size_t a_stride,
                           const double* panel, size_t k, double* c0,
                           double* c1, double* c2, double* c3) {
  __m128d s00 = _mm_setzero_pd(), s01 = _mm_setzero_pd(),
          s02 = _mm_setzero_pd(), s03 = _mm_setzero_pd();
  __m128d s10 = _mm_setzero_pd(), s11 = _mm_setzero_pd(),
          s12 = _mm_setzero_pd(), s13 = _mm_setzero_pd();
  __m128d s20 = _mm_setzero_pd(), s21 = _mm_setzero_pd(),
          s22 = _mm_setzero_pd(), s23 = _mm_setzero_pd();
  __m128d s30 = _mm_setzero_pd(), s31 = _mm_setzero_pd(),
          s32 = _mm_setzero_pd(), s33 = _mm_setzero_pd();
  for (size_t p = 0; p < k; ++p) {
    const double* bp = panel + p * 8;
    const __m128d b0 = _mm_loadu_pd(bp);
    const __m128d b1 = _mm_loadu_pd(bp + 2);
    const __m128d b2 = _mm_loadu_pd(bp + 4);
    const __m128d b3 = _mm_loadu_pd(bp + 6);
    __m128d x = _mm_set1_pd(a0[p * a_stride]);
    s00 = _mm_add_pd(s00, _mm_mul_pd(x, b0));
    s01 = _mm_add_pd(s01, _mm_mul_pd(x, b1));
    s02 = _mm_add_pd(s02, _mm_mul_pd(x, b2));
    s03 = _mm_add_pd(s03, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(a1[p * a_stride]);
    s10 = _mm_add_pd(s10, _mm_mul_pd(x, b0));
    s11 = _mm_add_pd(s11, _mm_mul_pd(x, b1));
    s12 = _mm_add_pd(s12, _mm_mul_pd(x, b2));
    s13 = _mm_add_pd(s13, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(a2[p * a_stride]);
    s20 = _mm_add_pd(s20, _mm_mul_pd(x, b0));
    s21 = _mm_add_pd(s21, _mm_mul_pd(x, b1));
    s22 = _mm_add_pd(s22, _mm_mul_pd(x, b2));
    s23 = _mm_add_pd(s23, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(a3[p * a_stride]);
    s30 = _mm_add_pd(s30, _mm_mul_pd(x, b0));
    s31 = _mm_add_pd(s31, _mm_mul_pd(x, b1));
    s32 = _mm_add_pd(s32, _mm_mul_pd(x, b2));
    s33 = _mm_add_pd(s33, _mm_mul_pd(x, b3));
  }
  _mm_storeu_pd(c0, s00);
  _mm_storeu_pd(c0 + 2, s01);
  _mm_storeu_pd(c0 + 4, s02);
  _mm_storeu_pd(c0 + 6, s03);
  _mm_storeu_pd(c1, s10);
  _mm_storeu_pd(c1 + 2, s11);
  _mm_storeu_pd(c1 + 4, s12);
  _mm_storeu_pd(c1 + 6, s13);
  _mm_storeu_pd(c2, s20);
  _mm_storeu_pd(c2 + 2, s21);
  _mm_storeu_pd(c2 + 4, s22);
  _mm_storeu_pd(c2 + 6, s23);
  _mm_storeu_pd(c3, s30);
  _mm_storeu_pd(c3 + 2, s31);
  _mm_storeu_pd(c3 + 4, s32);
  _mm_storeu_pd(c3 + 6, s33);
}
#else
// Portable fallback with the same accumulation order.
inline void MicroKernel4x8(const double* a0, const double* a1,
                           const double* a2, const double* a3, size_t a_stride,
                           const double* panel, size_t k, double* c0,
                           double* c1, double* c2, double* c3) {
  double s0[8] = {0}, s1[8] = {0}, s2[8] = {0}, s3[8] = {0};
  for (size_t p = 0; p < k; ++p) {
    const double* bp = panel + p * 8;
    const double x0 = a0[p * a_stride], x1 = a1[p * a_stride];
    const double x2 = a2[p * a_stride], x3 = a3[p * a_stride];
    for (int u = 0; u < 8; ++u) {
      s0[u] += x0 * bp[u];
      s1[u] += x1 * bp[u];
      s2[u] += x2 * bp[u];
      s3[u] += x3 * bp[u];
    }
  }
  for (int u = 0; u < 8; ++u) {
    c0[u] = s0[u];
    c1[u] = s1[u];
    c2[u] = s2[u];
    c3[u] = s3[u];
  }
}
#endif

// One row x one packed 8-column panel.
inline void MicroKernel1x8(const double* a0, size_t a_stride,
                           const double* panel, size_t k, double* c0) {
  double s[8] = {0};
  for (size_t p = 0; p < k; ++p) {
    const double* bp = panel + p * 8;
    const double x = a0[p * a_stride];
    for (int u = 0; u < 8; ++u) s[u] += x * bp[u];
  }
  for (int u = 0; u < 8; ++u) c0[u] = s[u];
}

// Computes C rows [i0, i1) of A(m,k) * B(k,n) against panel-packed B.
// a_row(i) must return a pointer whose p-th element (stride a_stride) is
// A(i, p) — this lets MatMulTransA reuse the kernel with A stored (k, m).
template <typename ARow>
void MatMulRowRange(ARow a_row, size_t a_stride, const Matrix& b,
                    const std::vector<double>& packed, Matrix* c, size_t i0,
                    size_t i1) {
  const size_t k = b.rows(), n = b.cols();
  const size_t num_panels = n / 8;
  size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = a_row(i);
    const double* a1 = a_row(i + 1);
    const double* a2 = a_row(i + 2);
    const double* a3 = a_row(i + 3);
    for (size_t panel = 0; panel < num_panels; ++panel) {
      const double* pk = packed.data() + panel * k * 8;
      const size_t j = panel * 8;
      MicroKernel4x8(a0, a1, a2, a3, a_stride, pk, k, c->row(i) + j,
                     c->row(i + 1) + j, c->row(i + 2) + j, c->row(i + 3) + j);
    }
    for (size_t j = num_panels * 8; j < n; ++j) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (size_t p = 0; p < k; ++p) {
        const double bpj = b.row(p)[j];
        s0 += a0[p * a_stride] * bpj;
        s1 += a1[p * a_stride] * bpj;
        s2 += a2[p * a_stride] * bpj;
        s3 += a3[p * a_stride] * bpj;
      }
      (*c)(i, j) = s0;
      (*c)(i + 1, j) = s1;
      (*c)(i + 2, j) = s2;
      (*c)(i + 3, j) = s3;
    }
  }
  for (; i < i1; ++i) {
    const double* a0 = a_row(i);
    for (size_t panel = 0; panel < num_panels; ++panel) {
      MicroKernel1x8(a0, a_stride, packed.data() + panel * k * 8, k,
                     c->row(i) + panel * 8);
    }
    for (size_t j = num_panels * 8; j < n; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += a0[p * a_stride] * b.row(p)[j];
      (*c)(i, j) = s;
    }
  }
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return c;
  const std::vector<double> packed = PackPanels(b);
  util::ParallelFor(0, m, MatMulGrain(m, k, n), [&](size_t i0, size_t i1) {
    // A(i, p) lives at a.row(i)[p]: stride 1 along p.
    MatMulRowRange([&a](size_t i) { return a.row(i); }, 1, b, packed, &c, i0,
                   i1);
  });
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return c;
  const std::vector<double> packed = PackPanels(b);
  util::ParallelFor(0, m, MatMulGrain(m, k, n), [&](size_t i0, size_t i1) {
    // (A^T)(i, p) = A(p, i) lives at a.data()[p * m + i]: stride m along p.
    const double* base = a.data();
    MatMulRowRange([base](size_t i) { return base + i; }, m, b, packed, &c,
                   i0, i1);
  });
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (m == 0 || n == 0) return c;
  util::ParallelFor(0, m, MatMulGrain(m, k, n), [&](size_t i0, size_t i1) {
    // Row-row dot products; 1x4 register tile reuses each a load 4 times.
    size_t i = i0;
    for (; i < i1; ++i) {
      const double* ai = a.row(i);
      double* ci = c.row(i);
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const double* b0 = b.row(j);
        const double* b1 = b.row(j + 1);
        const double* b2 = b.row(j + 2);
        const double* b3 = b.row(j + 3);
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (size_t p = 0; p < k; ++p) {
          const double x = ai[p];
          s0 += x * b0[p];
          s1 += x * b1[p];
          s2 += x * b2[p];
          s3 += x * b3[p];
        }
        ci[j] = s0;
        ci[j + 1] = s1;
        ci[j + 2] = s2;
        ci[j + 3] = s3;
      }
      for (; j < n; ++j) {
        const double* bj = b.row(j);
        double s = 0.0;
        for (size_t p = 0; p < k; ++p) s += ai[p] * bj[p];
        ci[j] = s;
      }
    }
  });
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = a;
  ParallelCombineInPlace(&c, b, [](double x, double y) { return x + y; });
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = a;
  ParallelCombineInPlace(&c, b, [](double x, double y) { return x - y; });
  return c;
}

Matrix CwiseMul(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = a;
  ParallelCombineInPlace(&c, b, [](double x, double y) { return x * y; });
  return c;
}

Matrix Scale(const Matrix& a, double scalar) {
  Matrix c = a;
  ParallelApplyInPlace(&c, [scalar](double x) { return x * scalar; });
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  ADAMGNN_CHECK_EQ(row.rows(), 1u);
  ADAMGNN_CHECK_EQ(row.cols(), a.cols());
  Matrix c = a;
  const double* rv = row.data();
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        double* cr = c.row(r);
                        for (size_t j = 0; j < c.cols(); ++j) cr[j] += rv[j];
                      }
                    });
  return c;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  ADAMGNN_CHECK_EQ(col.cols(), 1u);
  ADAMGNN_CHECK_EQ(col.rows(), a.rows());
  Matrix c = a;
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        const double s = col(r, 0);
                        double* cr = c.row(r);
                        for (size_t j = 0; j < c.cols(); ++j) cr[j] *= s;
                      }
                    });
  return c;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), c.row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), c.row(r) + a.cols());
  }
  return c;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), c.data());
  std::copy(b.data(), b.data() + b.size(), c.data() + a.size());
  return c;
}

Matrix ColSum(const Matrix& a) {
  Matrix c(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    for (size_t j = 0; j < a.cols(); ++j) c.data()[j] += ar[j];
  }
  return c;
}

Matrix RowSum(const Matrix& a) {
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += ar[j];
    c(r, 0) = s;
  }
  return c;
}

Matrix RowMean(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c = RowSum(a);
  c *= 1.0 / static_cast<double>(a.cols());
  return c;
}

Matrix RowMax(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    double m = ar[0];
    for (size_t j = 1; j < a.cols(); ++j) m = std::max(m, ar[j]);
    c(r, 0) = m;
  }
  return c;
}

Matrix SoftmaxRows(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c = a;
  util::ParallelFor(0, c.rows(), RowGrain(c.rows(), c.cols()),
                    [&](size_t r0, size_t r1) {
                      for (size_t r = r0; r < r1; ++r) {
                        double* cr = c.row(r);
                        double m = cr[0];
                        for (size_t j = 1; j < c.cols(); ++j) {
                          m = std::max(m, cr[j]);
                        }
                        double z = 0.0;
                        for (size_t j = 0; j < c.cols(); ++j) {
                          cr[j] = std::exp(cr[j] - m);
                          z += cr[j];
                        }
                        for (size_t j = 0; j < c.cols(); ++j) cr[j] /= z;
                      }
                    });
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = a;
  ParallelApplyInPlace(&c, [](double x) { return x > 0.0 ? x : 0.0; });
  return c;
}

Matrix LeakyRelu(const Matrix& a, double slope) {
  Matrix c = a;
  ParallelApplyInPlace(&c,
                       [slope](double x) { return x > 0.0 ? x : slope * x; });
  return c;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix c = a;
  ParallelApplyInPlace(&c, [](double x) {
    // Split on sign for numeric stability at large |x|.
    if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
    double e = std::exp(x);
    return e / (1.0 + e);
  });
  return c;
}

Matrix Tanh(const Matrix& a) {
  Matrix c = a;
  ParallelApplyInPlace(&c, [](double x) { return std::tanh(x); });
  return c;
}

Matrix Exp(const Matrix& a) {
  Matrix c = a;
  ParallelApplyInPlace(&c, [](double x) { return std::exp(x); });
  return c;
}

Matrix Log(const Matrix& a) {
  Matrix c = a;
  ParallelApplyInPlace(
      &c, [](double x) { return std::log(std::max(x, kLogTiny)); });
  return c;
}

Matrix SegmentSum(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments) {
  ADAMGNN_CHECK_EQ(segments.size(), a.rows());
  Matrix c(num_segments, a.cols());
  const size_t rows = a.rows(), cols = a.cols();
  if (rows == 0) return c;
  // Scatter with per-chunk partial accumulators, merged in ascending chunk
  // order. The decomposition depends only on `rows`, so the merged result is
  // bitwise-identical at every thread count; a single chunk (the common
  // small case) accumulates straight into c exactly like the serial loop.
  const std::vector<util::ChunkRange> chunks =
      util::SplitRange(0, rows, ScatterGrain(rows));
  std::vector<Matrix> partials;
  partials.reserve(chunks.size() > 0 ? chunks.size() - 1 : 0);
  for (size_t ci = 1; ci < chunks.size(); ++ci) {
    partials.emplace_back(num_segments, cols);
  }
  util::ParallelForChunks(chunks.size(), [&](size_t ci) {
    Matrix& dst = ci == 0 ? c : partials[ci - 1];
    for (size_t r = chunks[ci].begin; r < chunks[ci].end; ++r) {
      ADAMGNN_CHECK_LT(segments[r], num_segments);
      double* cs = dst.row(segments[r]);
      const double* ar = a.row(r);
      for (size_t j = 0; j < cols; ++j) cs[j] += ar[j];
    }
  });
  for (const Matrix& partial : partials) c += partial;
  return c;
}

Matrix SegmentMean(const Matrix& a, const std::vector<size_t>& segments,
                   size_t num_segments) {
  Matrix c = SegmentSum(a, segments, num_segments);
  std::vector<double> counts(num_segments, 0.0);
  for (size_t s : segments) counts[s] += 1.0;
  for (size_t s = 0; s < num_segments; ++s) {
    if (counts[s] == 0.0) continue;
    double inv = 1.0 / counts[s];
    double* cs = c.row(s);
    for (size_t j = 0; j < c.cols(); ++j) cs[j] *= inv;
  }
  return c;
}

Matrix SegmentMax(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments, std::vector<int64_t>* argmax) {
  ADAMGNN_CHECK_EQ(segments.size(), a.rows());
  const size_t d = a.cols();
  Matrix out(num_segments, d);
  std::vector<int64_t> local;
  std::vector<int64_t>& am = argmax != nullptr ? *argmax : local;
  am.assign(num_segments * d, -1);
  for (size_t i = 0; i < segments.size(); ++i) {
    const size_t s = segments[i];
    ADAMGNN_CHECK_LT(s, num_segments);
    const double* ar = a.row(i);
    for (size_t j = 0; j < d; ++j) {
      int64_t& owner = am[s * d + j];
      if (owner < 0 || ar[j] > out(s, j)) {
        out(s, j) = ar[j];
        owner = static_cast<int64_t>(i);
      }
    }
  }
  return out;
}

Matrix SegmentSoftmax(const Matrix& scores, const std::vector<size_t>& segments,
                      size_t num_segments) {
  ADAMGNN_CHECK_EQ(scores.cols(), 1u);
  ADAMGNN_CHECK_EQ(segments.size(), scores.rows());
  const size_t m = scores.rows();
  std::vector<double> seg_max(num_segments,
                              -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < m; ++i) {
    ADAMGNN_CHECK_LT(segments[i], num_segments);
    seg_max[segments[i]] = std::max(seg_max[segments[i]], scores(i, 0));
  }
  std::vector<double> seg_z(num_segments, 0.0);
  Matrix out(m, 1);
  for (size_t i = 0; i < m; ++i) {
    out(i, 0) = std::exp(scores(i, 0) - seg_max[segments[i]]);
    seg_z[segments[i]] += out(i, 0);
  }
  for (size_t i = 0; i < m; ++i) out(i, 0) /= seg_z[segments[i]];
  return out;
}

Matrix EdgeDots(const Matrix& h,
                const std::vector<std::pair<size_t, size_t>>& pairs) {
  const size_t d = h.cols();
  Matrix out(pairs.size(), 1);
  for (size_t e = 0; e < pairs.size(); ++e) {
    ADAMGNN_CHECK_LT(pairs[e].first, h.rows());
    ADAMGNN_CHECK_LT(pairs[e].second, h.rows());
    const double* hu = h.row(pairs[e].first);
    const double* hv = h.row(pairs[e].second);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += hu[j] * hv[j];
    out(e, 0) = s;
  }
  return out;
}

}  // namespace adamgnn::tensor
