#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

namespace adamgnn::tensor {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order: streams through b and c rows contiguously.
  for (size_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    const double* ai = a.row(i);
    for (size_t p = 0; p < k; ++p) {
      const double aip = ai[p];
      if (aip == 0.0) continue;
      const double* bp = b.row(p);
      for (size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const double* ap = a.row(p);
    const double* bp = b.row(p);
    for (size_t i = 0; i < m; ++i) {
      const double api = ap[i];
      if (api == 0.0) continue;
      double* ci = c.row(i);
      for (size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a.row(i);
    double* ci = c.row(i);
    for (size_t j = 0; j < n; ++j) {
      const double* bj = b.row(j);
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += ai[p] * bj[p];
      ci[j] = s;
    }
  }
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c += b;
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c -= b;
  return c;
}

Matrix CwiseMul(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK(a.SameShape(b));
  Matrix c = a;
  for (size_t i = 0; i < c.size(); ++i) c.data()[i] *= b.data()[i];
  return c;
}

Matrix Scale(const Matrix& a, double scalar) {
  Matrix c = a;
  c *= scalar;
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  ADAMGNN_CHECK_EQ(row.rows(), 1u);
  ADAMGNN_CHECK_EQ(row.cols(), a.cols());
  Matrix c = a;
  for (size_t r = 0; r < c.rows(); ++r) {
    double* cr = c.row(r);
    for (size_t j = 0; j < c.cols(); ++j) cr[j] += row.data()[j];
  }
  return c;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  ADAMGNN_CHECK_EQ(col.cols(), 1u);
  ADAMGNN_CHECK_EQ(col.rows(), a.rows());
  Matrix c = a;
  for (size_t r = 0; r < c.rows(); ++r) {
    const double s = col(r, 0);
    double* cr = c.row(r);
    for (size_t j = 0; j < c.cols(); ++j) cr[j] *= s;
  }
  return c;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), c.row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), c.row(r) + a.cols());
  }
  return c;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  ADAMGNN_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), c.data());
  std::copy(b.data(), b.data() + b.size(), c.data() + a.size());
  return c;
}

Matrix ColSum(const Matrix& a) {
  Matrix c(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    for (size_t j = 0; j < a.cols(); ++j) c.data()[j] += ar[j];
  }
  return c;
}

Matrix RowSum(const Matrix& a) {
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += ar[j];
    c(r, 0) = s;
  }
  return c;
}

Matrix RowMean(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c = RowSum(a);
  c *= 1.0 / static_cast<double>(a.cols());
  return c;
}

Matrix RowMax(const Matrix& a) {
  ADAMGNN_CHECK_GT(a.cols(), 0u);
  Matrix c(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r);
    double m = ar[0];
    for (size_t j = 1; j < a.cols(); ++j) m = std::max(m, ar[j]);
    c(r, 0) = m;
  }
  return c;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix c = a;
  for (size_t r = 0; r < c.rows(); ++r) {
    double* cr = c.row(r);
    double m = cr[0];
    for (size_t j = 1; j < c.cols(); ++j) m = std::max(m, cr[j]);
    double z = 0.0;
    for (size_t j = 0; j < c.cols(); ++j) {
      cr[j] = std::exp(cr[j] - m);
      z += cr[j];
    }
    for (size_t j = 0; j < c.cols(); ++j) cr[j] /= z;
  }
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = a;
  c.Apply([](double x) { return x > 0.0 ? x : 0.0; });
  return c;
}

Matrix LeakyRelu(const Matrix& a, double slope) {
  Matrix c = a;
  c.Apply([slope](double x) { return x > 0.0 ? x : slope * x; });
  return c;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix c = a;
  c.Apply([](double x) {
    // Split on sign for numeric stability at large |x|.
    if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
    double e = std::exp(x);
    return e / (1.0 + e);
  });
  return c;
}

Matrix Tanh(const Matrix& a) {
  Matrix c = a;
  c.Apply([](double x) { return std::tanh(x); });
  return c;
}

Matrix Exp(const Matrix& a) {
  Matrix c = a;
  c.Apply([](double x) { return std::exp(x); });
  return c;
}

Matrix Log(const Matrix& a) {
  Matrix c = a;
  c.Apply([](double x) { return std::log(x); });
  return c;
}

Matrix SegmentSum(const Matrix& a, const std::vector<size_t>& segments,
                  size_t num_segments) {
  ADAMGNN_CHECK_EQ(segments.size(), a.rows());
  Matrix c(num_segments, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    ADAMGNN_CHECK_LT(segments[r], num_segments);
    double* cs = c.row(segments[r]);
    const double* ar = a.row(r);
    for (size_t j = 0; j < a.cols(); ++j) cs[j] += ar[j];
  }
  return c;
}

Matrix SegmentMean(const Matrix& a, const std::vector<size_t>& segments,
                   size_t num_segments) {
  Matrix c = SegmentSum(a, segments, num_segments);
  std::vector<double> counts(num_segments, 0.0);
  for (size_t s : segments) counts[s] += 1.0;
  for (size_t s = 0; s < num_segments; ++s) {
    if (counts[s] == 0.0) continue;
    double inv = 1.0 / counts[s];
    double* cs = c.row(s);
    for (size_t j = 0; j < c.cols(); ++j) cs[j] *= inv;
  }
  return c;
}

}  // namespace adamgnn::tensor
