#ifndef ADAMGNN_TENSOR_TUNING_H_
#define ADAMGNN_TENSOR_TUNING_H_

#include <algorithm>
#include <cstddef>

// Shared kernel tuning constants and the adaptive strategy selector.
//
// Historically `kMaxGatherChunks` / `kMaxScatterChunks` and the grain
// formulas were hand-synced copies in graph/sparse_matrix.cc and
// autograd/sparse_ops.cc; this header is now the single source of truth,
// consumed by tensor/, graph/, and autograd/.
//
// Two families live here:
//
//   1. LEGACY grains (Legacy*Grain): pure functions of the operand shapes
//      ONLY. They drive the kLegacyScatter engine's chunk-partial
//      decomposition, where the decomposition IS the summation order — so
//      they must never consult the pool size.
//
//   2. ADAPTIVE selectors (Choose*, *Grain with an `ep` parameter): pick
//      serial-naive vs chunked-parallel vs gathered execution from the
//      problem shape AND `util::EffectiveParallelism()`. This is safe for
//      the kCachedGather engine because all of its execution strategies
//      produce bitwise-identical results (every output element is a plain
//      ascending-source left fold regardless of decomposition; see
//      DESIGN.md "Kernel dispatch & determinism"), so consulting the pool
//      size changes speed, never bits.

namespace adamgnn::tensor::tuning {

// ---- Shared gates and caps -------------------------------------------------

// Below this much total work (elements touched, e.g. nnz * dense cols) a
// kernel runs as a single chunk: pool dispatch costs more than the loop.
inline constexpr size_t kMinParallelWork = size_t{1} << 20;

// Elementwise kernels use a smaller gate: they are pure streaming loops.
inline constexpr size_t kMinParallelElems = size_t{1} << 15;

// Scatter kernels merge per-chunk partial accumulators; capping the chunk
// count bounds partial-matrix memory (legacy engine only).
inline constexpr size_t kMaxScatterChunks = 8;

// Gather outputs are invariant to the row decomposition, so this cap only
// bounds dispatch overhead on large matrices.
inline constexpr size_t kMaxGatherChunks = 64;

// Row/entry grain floors keep chunks coarse enough to amortize dispatch.
inline constexpr size_t kRowGrainFloor = 256;
inline constexpr size_t kEntryGrain = size_t{1} << 12;
inline constexpr size_t kMinScatterRows = size_t{1} << 12;

// ---- Dense GEMM ------------------------------------------------------------

// C rows per parallel chunk, and the flop gate below which the multiply
// stays single-chunk.
inline constexpr size_t kMatMulRowGrain = 32;
inline constexpr size_t kMinParallelFlops = size_t{1} << 20;

// BLIS-style K blocking: A panels of (rows x kGemmKc) are packed into the
// Workspace arena so the microkernel streams contiguous memory. Accumulating
// each K block directly into C continues the ascending-k left fold, so the
// blocking is bit-neutral.
inline constexpr size_t kGemmKc = 256;

// GEMM row grain. `ep` (EffectiveParallelism) only short-circuits pool
// dispatch — GEMM bits never depend on the row decomposition.
inline size_t MatMulGrain(size_t m, size_t k, size_t n, int ep) {
  if (ep <= 1) return m == 0 ? 1 : m;
  if (m * k * n < kMinParallelFlops) return m == 0 ? 1 : m;
  return kMatMulRowGrain;
}

// ---- Adaptive sparse/reduction strategy selection --------------------------

enum class ReduceStrategy {
  kSerialScatter,    // plain ascending-source loop, no grouping, no pool
  kParallelGather,   // group by output row, one pool task per row range
};

// SegmentSum / IndexAddRows. Serial scatter wins when the pool cannot help
// (ep <= 1), when the work is too small to amortize the grouping pass, or
// when the segment count is too skewed/small for row-parallelism to spread
// (fewer than kMinSegmentsPerLane segments per worker).
inline constexpr size_t kSegmentSerialBelow = size_t{1} << 18;
inline constexpr size_t kMinSegmentsPerLane = 4;

inline ReduceStrategy ChooseSegmentReduce(size_t rows, size_t cols,
                                          size_t num_segments, int ep) {
  if (ep <= 1) return ReduceStrategy::kSerialScatter;
  if (rows * cols < kSegmentSerialBelow) return ReduceStrategy::kSerialScatter;
  if (num_segments < kMinSegmentsPerLane * static_cast<size_t>(ep)) {
    return ReduceStrategy::kSerialScatter;
  }
  return ReduceStrategy::kParallelGather;
}

// SpMM^T (gather engine). Serial scatter additionally skips building the
// transposed view and entry groups — the right call for small one-shot
// multiplies; large single-threaded multiplies still prefer the (cached)
// gather view for its write locality.
inline ReduceStrategy ChooseSpmmTranspose(size_t nnz, size_t d,
                                          size_t out_rows, int ep) {
  const size_t work = nnz * d;
  if (work < kMinParallelWork) return ReduceStrategy::kSerialScatter;
  if (ep > 1 && out_rows < kMinSegmentsPerLane * static_cast<size_t>(ep)) {
    return ReduceStrategy::kSerialScatter;
  }
  return ReduceStrategy::kParallelGather;
}

// ---- Gather grains (adaptive: may consult ep) ------------------------------

inline size_t GatherRowGrain(size_t rows, size_t work, int ep) {
  if (ep <= 1 || work < kMinParallelWork) return rows == 0 ? 1 : rows;
  return std::max(kRowGrainFloor,
                  (rows + kMaxGatherChunks - 1) / kMaxGatherChunks);
}

inline size_t GatherEntryGrain(size_t entries, size_t work, int ep) {
  if (ep <= 1 || work < kMinParallelWork) return entries == 0 ? 1 : entries;
  return kEntryGrain;
}

// Segment-gather grain (over output segments).
inline size_t SegmentGrain(size_t num_segments) {
  return std::max<size_t>(
      kRowGrainFloor,
      (num_segments + kMaxScatterChunks * 8 - 1) / (kMaxScatterChunks * 8));
}

// ---- Legacy grains (shape-only; the decomposition IS the fold order) -------

// graph/sparse_matrix.cc SpMM^T scatter (source rows).
inline size_t LegacySpmmScatterGrain(size_t rows, size_t work) {
  if (work < kMinParallelWork) return rows == 0 ? 1 : rows;
  return std::max<size_t>(kRowGrainFloor,
                          (rows + kMaxScatterChunks - 1) / kMaxScatterChunks);
}

// autograd/sparse_ops.cc ScatterRows (entries).
inline size_t LegacyEntryScatterGrain(size_t entries, size_t work) {
  if (work < kMinParallelWork) return entries == 0 ? 1 : entries;
  return std::max<size_t>(
      kEntryGrain, (entries + kMaxScatterChunks - 1) / kMaxScatterChunks);
}

// tensor/kernels.cc SegmentSum scatter (input rows).
inline size_t LegacySegmentScatterGrain(size_t rows) {
  const size_t by_cap = (rows + kMaxScatterChunks - 1) / kMaxScatterChunks;
  return std::max(kMinScatterRows, by_cap);
}

}  // namespace adamgnn::tensor::tuning

#endif  // ADAMGNN_TENSOR_TUNING_H_
