// Scalar (portable C++) kernel variant. See simd_ops.h for the contract.
// Compiled with the project's default flags — no vector intrinsics — so it
// runs on any CPU and serves as the bit reference: sse2 matches it exactly
// everywhere, avx2 matches it exactly outside the FMA GEMM microkernel.

#include "tensor/simd_ops.h"
#include "tensor/tuning.h"

namespace adamgnn::tensor::simd {

namespace {

inline void Axpy(double* y, const double* x, size_t d, double w) {
  for (size_t j = 0; j < d; ++j) y[j] += w * x[j];
}

inline void AxpyStore(double* y, const double* x, size_t d, double w) {
  for (size_t j = 0; j < d; ++j) y[j] = 0.0 + w * x[j];
}

inline void VAdd(double* y, const double* x, size_t d) {
  for (size_t j = 0; j < d; ++j) y[j] += x[j];
}

// 4x8 tile with one scalar accumulator per element, ascending p.
inline void MicroKernel4x8(const double* ap, const double* bp, size_t kc,
                           double* c0, double* c1, double* c2, double* c3,
                           bool accumulate) {
  double s0[8], s1[8], s2[8], s3[8];
  for (int u = 0; u < 8; ++u) {
    s0[u] = accumulate ? c0[u] : 0.0;
    s1[u] = accumulate ? c1[u] : 0.0;
    s2[u] = accumulate ? c2[u] : 0.0;
    s3[u] = accumulate ? c3[u] : 0.0;
  }
  for (size_t p = 0; p < kc; ++p) {
    const double* b = bp + p * 8;
    const double x0 = ap[p * 4], x1 = ap[p * 4 + 1];
    const double x2 = ap[p * 4 + 2], x3 = ap[p * 4 + 3];
    for (int u = 0; u < 8; ++u) {
      s0[u] += x0 * b[u];
      s1[u] += x1 * b[u];
      s2[u] += x2 * b[u];
      s3[u] += x3 * b[u];
    }
  }
  for (int u = 0; u < 8; ++u) {
    c0[u] = s0[u];
    c1[u] = s1[u];
    c2[u] = s2[u];
    c3[u] = s3[u];
  }
}

#include "tensor/kernels_isa_body.inc"

}  // namespace

const SimdOps* ScalarOps() {
  static const SimdOps ops = {Isa::kScalar, "scalar", &GemmRowRange,
                              &GatherRowRange,  &Axpy,  &AxpyStore,
                              &VAdd};
  return &ops;
}

}  // namespace adamgnn::tensor::simd
