// Process-wide switch between the two sparse training-path engines. It lives
// in the tensor layer so both the CSR kernels in graph/ (SpMM and friends)
// and the segment reductions in tensor/kernels.cc can read it; graph/ re-
// exports the names, so callers keep writing graph::SetSparseEngine.

#ifndef ADAMGNN_TENSOR_ENGINE_H_
#define ADAMGNN_TENSOR_ENGINE_H_

namespace adamgnn::tensor {

/// Which implementation the gather-able kernels run: the adaptive
/// serial-scatter / cached-gather strategies (kCachedGather, the default;
/// see tensor/tuning.h) or the historical scatter-into-partials kernels
/// (kLegacyScatter), retained so benchmarks and tests can reproduce the
/// pre-engine behavior in the same binary. Within kCachedGather every
/// strategy folds each output row in ascending source order, so the engine
/// is bitwise-deterministic across strategies, thread counts, and ISAs. The
/// legacy engine merges per-chunk partials instead; its summation order
/// matches the plain fold only at single-chunk shapes, so the two engines
/// agree bitwise there and to numerical tolerance at larger shapes.
enum class SparseEngine {
  kCachedGather,
  kLegacyScatter,
};

/// Sets/reads the process-wide sparse engine (atomic; default kCachedGather).
void SetSparseEngine(SparseEngine engine);
SparseEngine GetSparseEngine();

}  // namespace adamgnn::tensor

#endif  // ADAMGNN_TENSOR_ENGINE_H_
