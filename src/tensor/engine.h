// Process-wide switch between the two sparse training-path engines. It lives
// in the tensor layer so both the CSR kernels in graph/ (SpMM and friends)
// and the segment reductions in tensor/kernels.cc can read it; graph/ re-
// exports the names, so callers keep writing graph::SetSparseEngine.

#ifndef ADAMGNN_TENSOR_ENGINE_H_
#define ADAMGNN_TENSOR_ENGINE_H_

namespace adamgnn::tensor {

/// Which implementation the gather-able kernels run: SpMMᵀ over the cached
/// transposed-CSR view and the grouped segment reductions (kCachedGather,
/// the default), or the historical scatter-into-partials kernels
/// (kLegacyScatter), retained so benchmarks and tests can reproduce the
/// pre-engine behavior in the same binary. The two produce bitwise-identical
/// results — flipping the switch changes speed, not math.
enum class SparseEngine {
  kCachedGather,
  kLegacyScatter,
};

/// Sets/reads the process-wide sparse engine (atomic; default kCachedGather).
void SetSparseEngine(SparseEngine engine);
SparseEngine GetSparseEngine();

}  // namespace adamgnn::tensor

#endif  // ADAMGNN_TENSOR_ENGINE_H_
