// SSE2 (128-bit) kernel variant. See simd_ops.h for the contract. SSE2 is
// the x86-64 baseline, so this TU needs no special compile flags; on other
// targets the portable fallbacks below keep the exact same fold order (the
// runtime dispatcher never selects this variant there anyway).
//
// Every lane operation is mul-then-add — no FMA exists at this ISA — so
// axpy/vadd/gather results are bitwise-identical to the scalar variant, and
// the GEMM microkernel reproduces the scalar fold per element exactly.

#include "tensor/simd_ops.h"
#include "tensor/tuning.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace adamgnn::tensor::simd {

namespace {

#if defined(__SSE2__)

inline void Axpy(double* y, const double* x, size_t d, double w) {
  const __m128d vw = _mm_set1_pd(w);
  size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    const __m128d p = _mm_mul_pd(vw, _mm_loadu_pd(x + j));
    _mm_storeu_pd(y + j, _mm_add_pd(_mm_loadu_pd(y + j), p));
  }
  for (; j < d; ++j) y[j] += w * x[j];
}

inline void AxpyStore(double* y, const double* x, size_t d, double w) {
  const __m128d vw = _mm_set1_pd(w);
  const __m128d zero = _mm_setzero_pd();
  size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    const __m128d p = _mm_mul_pd(vw, _mm_loadu_pd(x + j));
    _mm_storeu_pd(y + j, _mm_add_pd(zero, p));
  }
  for (; j < d; ++j) y[j] = 0.0 + w * x[j];
}

inline void VAdd(double* y, const double* x, size_t d) {
  size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    _mm_storeu_pd(y + j, _mm_add_pd(_mm_loadu_pd(y + j), _mm_loadu_pd(x + j)));
  }
  for (; j < d; ++j) y[j] += x[j];
}

// 4 rows x 8 columns: 16 xmm accumulators against one packed panel slice.
inline void MicroKernel4x8(const double* ap, const double* bp, size_t kc,
                           double* c0, double* c1, double* c2, double* c3,
                           bool accumulate) {
  __m128d s00, s01, s02, s03, s10, s11, s12, s13;
  __m128d s20, s21, s22, s23, s30, s31, s32, s33;
  if (accumulate) {
    s00 = _mm_loadu_pd(c0);
    s01 = _mm_loadu_pd(c0 + 2);
    s02 = _mm_loadu_pd(c0 + 4);
    s03 = _mm_loadu_pd(c0 + 6);
    s10 = _mm_loadu_pd(c1);
    s11 = _mm_loadu_pd(c1 + 2);
    s12 = _mm_loadu_pd(c1 + 4);
    s13 = _mm_loadu_pd(c1 + 6);
    s20 = _mm_loadu_pd(c2);
    s21 = _mm_loadu_pd(c2 + 2);
    s22 = _mm_loadu_pd(c2 + 4);
    s23 = _mm_loadu_pd(c2 + 6);
    s30 = _mm_loadu_pd(c3);
    s31 = _mm_loadu_pd(c3 + 2);
    s32 = _mm_loadu_pd(c3 + 4);
    s33 = _mm_loadu_pd(c3 + 6);
  } else {
    s00 = s01 = s02 = s03 = _mm_setzero_pd();
    s10 = s11 = s12 = s13 = _mm_setzero_pd();
    s20 = s21 = s22 = s23 = _mm_setzero_pd();
    s30 = s31 = s32 = s33 = _mm_setzero_pd();
  }
  for (size_t p = 0; p < kc; ++p) {
    const double* b = bp + p * 8;
    const __m128d b0 = _mm_loadu_pd(b);
    const __m128d b1 = _mm_loadu_pd(b + 2);
    const __m128d b2 = _mm_loadu_pd(b + 4);
    const __m128d b3 = _mm_loadu_pd(b + 6);
    __m128d x = _mm_set1_pd(ap[p * 4]);
    s00 = _mm_add_pd(s00, _mm_mul_pd(x, b0));
    s01 = _mm_add_pd(s01, _mm_mul_pd(x, b1));
    s02 = _mm_add_pd(s02, _mm_mul_pd(x, b2));
    s03 = _mm_add_pd(s03, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(ap[p * 4 + 1]);
    s10 = _mm_add_pd(s10, _mm_mul_pd(x, b0));
    s11 = _mm_add_pd(s11, _mm_mul_pd(x, b1));
    s12 = _mm_add_pd(s12, _mm_mul_pd(x, b2));
    s13 = _mm_add_pd(s13, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(ap[p * 4 + 2]);
    s20 = _mm_add_pd(s20, _mm_mul_pd(x, b0));
    s21 = _mm_add_pd(s21, _mm_mul_pd(x, b1));
    s22 = _mm_add_pd(s22, _mm_mul_pd(x, b2));
    s23 = _mm_add_pd(s23, _mm_mul_pd(x, b3));
    x = _mm_set1_pd(ap[p * 4 + 3]);
    s30 = _mm_add_pd(s30, _mm_mul_pd(x, b0));
    s31 = _mm_add_pd(s31, _mm_mul_pd(x, b1));
    s32 = _mm_add_pd(s32, _mm_mul_pd(x, b2));
    s33 = _mm_add_pd(s33, _mm_mul_pd(x, b3));
  }
  _mm_storeu_pd(c0, s00);
  _mm_storeu_pd(c0 + 2, s01);
  _mm_storeu_pd(c0 + 4, s02);
  _mm_storeu_pd(c0 + 6, s03);
  _mm_storeu_pd(c1, s10);
  _mm_storeu_pd(c1 + 2, s11);
  _mm_storeu_pd(c1 + 4, s12);
  _mm_storeu_pd(c1 + 6, s13);
  _mm_storeu_pd(c2, s20);
  _mm_storeu_pd(c2 + 2, s21);
  _mm_storeu_pd(c2 + 4, s22);
  _mm_storeu_pd(c2 + 6, s23);
  _mm_storeu_pd(c3, s30);
  _mm_storeu_pd(c3 + 2, s31);
  _mm_storeu_pd(c3 + 4, s32);
  _mm_storeu_pd(c3 + 6, s33);
}

#else  // !__SSE2__: portable fallbacks with the same fold order.

inline void Axpy(double* y, const double* x, size_t d, double w) {
  for (size_t j = 0; j < d; ++j) y[j] += w * x[j];
}

inline void AxpyStore(double* y, const double* x, size_t d, double w) {
  for (size_t j = 0; j < d; ++j) y[j] = 0.0 + w * x[j];
}

inline void VAdd(double* y, const double* x, size_t d) {
  for (size_t j = 0; j < d; ++j) y[j] += x[j];
}

inline void MicroKernel4x8(const double* ap, const double* bp, size_t kc,
                           double* c0, double* c1, double* c2, double* c3,
                           bool accumulate) {
  double s0[8], s1[8], s2[8], s3[8];
  for (int u = 0; u < 8; ++u) {
    s0[u] = accumulate ? c0[u] : 0.0;
    s1[u] = accumulate ? c1[u] : 0.0;
    s2[u] = accumulate ? c2[u] : 0.0;
    s3[u] = accumulate ? c3[u] : 0.0;
  }
  for (size_t p = 0; p < kc; ++p) {
    const double* b = bp + p * 8;
    const double x0 = ap[p * 4], x1 = ap[p * 4 + 1];
    const double x2 = ap[p * 4 + 2], x3 = ap[p * 4 + 3];
    for (int u = 0; u < 8; ++u) {
      s0[u] += x0 * b[u];
      s1[u] += x1 * b[u];
      s2[u] += x2 * b[u];
      s3[u] += x3 * b[u];
    }
  }
  for (int u = 0; u < 8; ++u) {
    c0[u] = s0[u];
    c1[u] = s1[u];
    c2[u] = s2[u];
    c3[u] = s3[u];
  }
}

#endif  // __SSE2__

#include "tensor/kernels_isa_body.inc"

}  // namespace

const SimdOps* Sse2Ops() {
  static const SimdOps ops = {Isa::kSse2, "sse2", &GemmRowRange,
                              &GatherRowRange, &Axpy, &AxpyStore,
                              &VAdd};
  return &ops;
}

}  // namespace adamgnn::tensor::simd
