#include "tensor/workspace.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/cancel.h"
#include "util/logging.h"

namespace adamgnn::tensor {

namespace {

std::atomic<bool> g_workspace_enabled{true};
thread_local Workspace* t_current = nullptr;

Workspace* CurrentIfEnabled() {
  if (!g_workspace_enabled.load(std::memory_order_relaxed)) return nullptr;
  return t_current;
}

/// Smallest power of two >= n (n >= 1): the class an acquire draws from and
/// the capacity a fresh miss is padded to.
size_t ClassFor(size_t n) { return std::bit_ceil(n); }

/// Largest power of two <= capacity: the class a buffer parks under, chosen
/// so every buffer in class c can serve any acquire of up to c doubles even
/// when the capacity is not itself a power of two (buffers allocated on
/// unbound threads, or grown behind our back by vector internals).
size_t ClassUnder(size_t capacity) { return std::bit_floor(capacity); }

}  // namespace

Workspace::Stats Workspace::stats() const {
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.retained_doubles = retained_doubles_;
  s.retained_buffers = retained_buffers_;
#ifndef NDEBUG
  size_t recount = 0;
  for (const auto& [cls, buffers] : free_) recount += buffers.size();
  ADAMGNN_DCHECK_EQ(recount, retained_buffers_);
#endif
  return s;
}

void Workspace::Clear() {
  free_.clear();
  retained_doubles_ = 0;
  retained_buffers_ = 0;
}

Workspace* Workspace::Current() { return t_current; }

void Workspace::SetEnabled(bool enabled) {
  g_workspace_enabled.store(enabled, std::memory_order_relaxed);
}

bool Workspace::Enabled() {
  return g_workspace_enabled.load(std::memory_order_relaxed);
}

Workspace::Bind::Bind(Workspace* ws) : prev_(t_current) { t_current = ws; }

Workspace::Bind::~Bind() { t_current = prev_; }

std::vector<double> Workspace::TakeBuffer(size_t n) {
  auto it = free_.find(ClassFor(n));
  if (it == free_.end() || it->second.empty()) {
    ++misses_;
    return {};
  }
  ++hits_;
  std::vector<double> buf = std::move(it->second.back().buf);
  it->second.pop_back();
  if (it->second.empty()) free_.erase(it);
  ADAMGNN_DCHECK_GE(retained_doubles_, buf.capacity());
  ADAMGNN_DCHECK_GE(retained_buffers_, size_t{1});
  retained_doubles_ -= buf.capacity();
  --retained_buffers_;
  buf.resize(n);  // capacity >= class >= n, so this never reallocates
  return buf;
}

void Workspace::Park(std::vector<double>&& buf) noexcept {
  retained_doubles_ += buf.capacity();
  ++retained_buffers_;
  free_[ClassUnder(buf.capacity())].push_back(
      Parked{next_seq_++, std::move(buf)});
  // EvictOldest returning false means the freelist is already empty; bail
  // rather than spin (a mis-accounted retained_doubles_ could otherwise make
  // this loop infinite with nothing left to free).
  while (retained_doubles_ > retained_limit_) {
    if (!EvictOldest()) break;
  }
}

bool Workspace::EvictOldest() noexcept {
  auto oldest = free_.end();
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    // Empty buckets violate the freelist invariant (every pop erases the
    // bucket it empties); tolerate them in release builds but flag in debug.
    ADAMGNN_DCHECK(!it->second.empty());
    if (it->second.empty()) continue;
    if (oldest == free_.end() ||
        it->second.front().seq < oldest->second.front().seq) {
      oldest = it;
    }
  }
  if (oldest == free_.end()) return false;
  ADAMGNN_DCHECK_GE(retained_doubles_, oldest->second.front().buf.capacity());
  ADAMGNN_DCHECK_GE(retained_buffers_, size_t{1});
  retained_doubles_ -= oldest->second.front().buf.capacity();
  --retained_buffers_;
  oldest->second.pop_front();
  if (oldest->second.empty()) free_.erase(oldest);
  ++evictions_;
  return true;
}

std::vector<double> Workspace::AcquireFilled(size_t n, double fill) {
  util::AllocCheckpoint();
  Workspace* ws = CurrentIfEnabled();
  if (ws == nullptr || n == 0) return std::vector<double>(n, fill);
  std::vector<double> buf = ws->TakeBuffer(n);
  if (buf.empty()) {
    buf.reserve(ClassFor(n));  // pad to the class so reuse stays exact
    buf.resize(n);
  }
  std::fill(buf.begin(), buf.end(), fill);
  return buf;
}

std::vector<double> Workspace::AcquireUninit(size_t n) {
  util::AllocCheckpoint();
  Workspace* ws = CurrentIfEnabled();
  if (ws == nullptr || n == 0) return std::vector<double>(n);
  std::vector<double> buf = ws->TakeBuffer(n);
  if (!buf.empty()) return buf;  // recycled: contents left as-is, no fill pass
  buf.reserve(ClassFor(n));
  buf.resize(n);
  return buf;
}

std::vector<double> Workspace::AcquireCopy(const std::vector<double>& src) {
  util::AllocCheckpoint();
  Workspace* ws = CurrentIfEnabled();
  if (ws == nullptr || src.empty()) return src;
  std::vector<double> buf = ws->TakeBuffer(src.size());
  if (buf.empty()) {
    buf.reserve(ClassFor(src.size()));
    buf.resize(src.size());
  }
  std::copy(src.begin(), src.end(), buf.begin());
  return buf;
}

void Workspace::Release(std::vector<double>&& buf) noexcept {
  if (buf.capacity() == 0) return;
  Workspace* ws = CurrentIfEnabled();
  if (ws == nullptr) return;  // buf frees normally as it goes out of scope
  ws->Park(std::move(buf));
}

}  // namespace adamgnn::tensor
