#include "pool/wl_gnn.h"

#include "tensor/kernels.h"
#include "util/logging.h"

namespace adamgnn::pool {

WlGnnGraphModel::WlGnnGraphModel(const WlGnnConfig& config, util::Rng* rng)
    : config_(config),
      head_(2 * config.hidden_dim, static_cast<size_t>(config.num_classes),
            /*use_bias=*/true, rng),
      dropout_(config.dropout) {
  ADAMGNN_CHECK_GT(config.in_dim, 0u);
  ADAMGNN_CHECK_GE(config.num_layers, 1);
  for (int l = 0; l < config.num_layers; ++l) {
    const size_t in = l == 0 ? config.in_dim : config.hidden_dim;
    w_self_.push_back(std::make_unique<nn::Linear>(in, config.hidden_dim,
                                                   /*use_bias=*/true, rng));
    w_hop1_.push_back(std::make_unique<nn::Linear>(in, config.hidden_dim,
                                                   /*use_bias=*/false, rng));
    w_hop2_.push_back(std::make_unique<nn::Linear>(in, config.hidden_dim,
                                                   /*use_bias=*/false, rng));
  }
}

train::GraphModel::Out WlGnnGraphModel::Forward(
    const graph::GraphBatch& batch, bool training, util::Rng* rng) {
  autograd::Variable all_logits;
  for (size_t gi = 0; gi < batch.num_graphs(); ++gi) {
    MemberGraph member = ExtractMember(batch, gi);
    // Dense Â and Â² — the quadratic footprint of higher-order methods.
    tensor::Matrix a_dense = member.adjacency.Normalized().ToDense();
    autograd::Variable a = autograd::Variable::Constant(a_dense);
    autograd::Variable a2 = autograd::Variable::Constant(
        tensor::MatMul(a_dense, a_dense));
    autograd::Variable h =
        autograd::Variable::Constant(std::move(member.features));

    for (size_t l = 0; l < w_self_.size(); ++l) {
      autograd::Variable mixed = autograd::Add(
          autograd::Add(w_self_[l]->Forward(h),
                        autograd::MatMul(a, w_hop1_[l]->Forward(h))),
          autograd::MatMul(a2, w_hop2_[l]->Forward(h)));
      h = autograd::Relu(mixed);
      h = dropout_.Apply(h, rng, training);
    }

    autograd::Variable logits = head_.Forward(ReadoutMeanMax(h));
    all_logits = all_logits.defined()
                     ? autograd::ConcatRows(all_logits, logits)
                     : logits;
  }
  return {all_logits, autograd::Variable()};
}

std::vector<autograd::Variable> WlGnnGraphModel::Parameters() const {
  std::vector<autograd::Variable> params;
  auto append = [&params](const std::vector<autograd::Variable>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  for (const auto& m : w_self_) append(m->Parameters());
  for (const auto& m : w_hop1_) append(m->Parameters());
  for (const auto& m : w_hop2_) append(m->Parameters());
  append(head_.Parameters());
  return params;
}

}  // namespace adamgnn::pool
