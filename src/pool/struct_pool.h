// StructPool approximation (Yuan & Ji 2020): dense cluster assignment with
// conditional-random-field refinement. Reuses the dense pooling skeleton of
// pool/diff_pool.h with CRF mean-field iterations enabled.

#ifndef ADAMGNN_POOL_STRUCT_POOL_H_
#define ADAMGNN_POOL_STRUCT_POOL_H_

#include <memory>

#include "pool/diff_pool.h"

namespace adamgnn::pool {

std::unique_ptr<DensePoolGraphModel> MakeStructPoolModel(size_t in_dim,
                                                         size_t hidden_dim,
                                                         int num_classes,
                                                         util::Rng* rng);

}  // namespace adamgnn::pool

#endif  // ADAMGNN_POOL_STRUCT_POOL_H_
