#include "pool/diff_pool.h"

#include "util/logging.h"

namespace adamgnn::pool {

DensePoolGraphModel::DensePoolGraphModel(const DensePoolConfig& config,
                                         util::Rng* rng)
    : config_(config),
      head_(2 * config.hidden_dim, static_cast<size_t>(config.num_classes),
            /*use_bias=*/true, rng),
      dropout_(config.dropout) {
  ADAMGNN_CHECK_GT(config.in_dim, 0u);
  ADAMGNN_CHECK(!config.cluster_sizes.empty());
  for (size_t l = 0; l < config.cluster_sizes.size(); ++l) {
    const size_t in = l == 0 ? config.in_dim : config.hidden_dim;
    embed_.push_back(std::make_unique<nn::Linear>(in, config.hidden_dim,
                                                  /*use_bias=*/true, rng));
    assign_.push_back(std::make_unique<nn::Linear>(
        in, config.cluster_sizes[l], /*use_bias=*/true, rng));
  }
}

train::GraphModel::Out DensePoolGraphModel::Forward(
    const graph::GraphBatch& batch, bool training, util::Rng* rng) {
  autograd::Variable all_logits;
  for (size_t gi = 0; gi < batch.num_graphs(); ++gi) {
    MemberGraph member = ExtractMember(batch, gi);
    // Dense normalized adjacency — the O(n²) footprint that makes these
    // methods "not easily scalable" (Table 4's point).
    autograd::Variable a = autograd::Variable::Constant(
        member.adjacency.Normalized().ToDense());
    autograd::Variable x =
        autograd::Variable::Constant(std::move(member.features));

    for (size_t l = 0; l < config_.cluster_sizes.size(); ++l) {
      // Z = ReLU(Â X W_e), assignment logits L = Â X W_a.
      autograd::Variable z = autograd::Relu(
          autograd::MatMul(a, embed_[l]->Forward(x)));
      z = dropout_.Apply(z, rng, training);
      autograd::Variable logits_s =
          autograd::MatMul(a, assign_[l]->Forward(x));
      // StructPool refinement: mean-field iterations coupling neighbors'
      // assignments through the adjacency.
      autograd::Variable s = autograd::SoftmaxRows(logits_s);
      for (int it = 0; it < config_.crf_iterations; ++it) {
        autograd::Variable pairwise = autograd::Scale(
            autograd::MatMul(a, s), config_.crf_weight);
        s = autograd::SoftmaxRows(autograd::Add(logits_s, pairwise));
      }
      autograd::Variable st = autograd::Transpose(s);
      x = autograd::MatMul(st, z);                       // X' = SᵀZ
      a = autograd::MatMul(autograd::MatMul(st, a), s);  // A' = SᵀÂS
    }

    autograd::Variable logits = head_.Forward(ReadoutMeanMax(x));
    all_logits = all_logits.defined()
                     ? autograd::ConcatRows(all_logits, logits)
                     : logits;
  }
  return {all_logits, autograd::Variable()};
}

std::vector<autograd::Variable> DensePoolGraphModel::Parameters() const {
  std::vector<autograd::Variable> params;
  for (const auto& m : embed_) {
    for (auto& p : m->Parameters()) params.push_back(p);
  }
  for (const auto& m : assign_) {
    for (auto& p : m->Parameters()) params.push_back(p);
  }
  for (auto& p : head_.Parameters()) params.push_back(p);
  return params;
}

std::unique_ptr<DensePoolGraphModel> MakeDiffPoolModel(size_t in_dim,
                                                       size_t hidden_dim,
                                                       int num_classes,
                                                       util::Rng* rng) {
  DensePoolConfig config;
  config.in_dim = in_dim;
  config.hidden_dim = hidden_dim;
  config.num_classes = num_classes;
  return std::make_unique<DensePoolGraphModel>(config, rng);
}

}  // namespace adamgnn::pool
