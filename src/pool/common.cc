#include "pool/common.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace adamgnn::pool {

MemberGraph ExtractMember(const graph::GraphBatch& batch, size_t index) {
  ADAMGNN_CHECK_LT(index, batch.num_graphs());
  const size_t off = batch.offsets[index];
  const size_t n = batch.offsets[index + 1] - off;
  MemberGraph member;
  member.num_nodes = n;

  const tensor::Matrix& all = batch.merged.features();
  member.features = tensor::Matrix(n, all.cols());
  for (size_t i = 0; i < n; ++i) {
    std::copy(all.row(off + i), all.row(off + i) + all.cols(),
              member.features.row(i));
  }

  std::vector<graph::Triplet> triplets;
  for (size_t i = 0; i < n; ++i) {
    const auto v = static_cast<graph::NodeId>(off + i);
    auto nbrs = batch.merged.Neighbors(v);
    auto ws = batch.merged.NeighborWeights(v);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      // Batch members are blocks: every neighbor stays inside the block.
      triplets.push_back(
          {i, static_cast<size_t>(nbrs[k]) - off, ws[k]});
    }
  }
  member.adjacency =
      graph::SparseMatrix::FromTriplets(n, n, std::move(triplets));
  return member;
}

graph::SparseMatrix SparseSubmatrix(const graph::SparseMatrix& a,
                                    const std::vector<size_t>& idx) {
  ADAMGNN_CHECK_EQ(a.rows(), a.cols());
  std::vector<int64_t> position(a.rows(), -1);
  for (size_t i = 0; i < idx.size(); ++i) {
    ADAMGNN_CHECK_LT(idx[i], a.rows());
    position[idx[i]] = static_cast<int64_t>(i);
  }
  std::vector<graph::Triplet> triplets;
  for (size_t i = 0; i < idx.size(); ++i) {
    const size_t r = idx[i];
    for (size_t k = a.row_offsets()[r]; k < a.row_offsets()[r + 1]; ++k) {
      const int64_t c = position[a.col_indices()[k]];
      if (c >= 0) {
        triplets.push_back({i, static_cast<size_t>(c), a.values()[k]});
      }
    }
  }
  return graph::SparseMatrix::FromTriplets(idx.size(), idx.size(),
                                           std::move(triplets));
}

std::vector<size_t> TopKIndices(const tensor::Matrix& scores, double ratio) {
  ADAMGNN_CHECK_EQ(scores.cols(), 1u);
  ADAMGNN_CHECK_GT(scores.rows(), 0u);
  ADAMGNN_CHECK_GT(ratio, 0.0);
  const size_t n = scores.rows();
  size_t k = static_cast<size_t>(
      std::ceil(ratio * static_cast<double>(n)));
  k = std::clamp<size_t>(k, 1, n);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    if (scores(a, 0) != scores(b, 0)) return scores(a, 0) > scores(b, 0);
    return a < b;
  });
  order.resize(k);
  return order;
}

autograd::Variable ReadoutMeanMax(const autograd::Variable& h) {
  std::vector<size_t> one_segment(h.rows(), 0);
  autograd::Variable mean = autograd::SegmentMean(h, one_segment, 1);
  autograd::Variable max = autograd::SegmentMax(h, one_segment, 1);
  return autograd::ConcatCols(mean, max);
}

}  // namespace adamgnn::pool
