#include "pool/topk_pool.h"

#include <cmath>

#include "nn/init.h"
#include "util/logging.h"

namespace adamgnn::pool {

namespace {

// Projection score s = X p / ‖p‖ (the norm is treated as a constant per
// step, as in common Graph U-Net implementations: the tanh gate downstream
// makes the scale immaterial to selection).
autograd::Variable ProjectionScore(const autograd::Variable& h,
                                   const autograd::Variable& p) {
  const double norm = std::max(p.value().Norm(), 1e-12);
  return autograd::Scale(autograd::MatMul(h, p), 1.0 / norm);
}

}  // namespace

TopKGraphModel::TopKGraphModel(const TopKGraphConfig& config, util::Rng* rng)
    : config_(config),
      head_(2 * config.hidden_dim, static_cast<size_t>(config.num_classes),
            /*use_bias=*/true, rng),
      dropout_(config.dropout) {
  ADAMGNN_CHECK_GT(config.in_dim, 0u);
  ADAMGNN_CHECK_GE(config.num_levels, 1);
  ADAMGNN_CHECK_GT(config.ratio, 0.0);
  ADAMGNN_CHECK_LE(config.ratio, 1.0);
  for (int l = 0; l < config.num_levels; ++l) {
    const size_t in = l == 0 ? config.in_dim : config.hidden_dim;
    convs_.push_back(std::make_unique<nn::GcnConv>(in, config.hidden_dim,
                                                   rng));
    if (config.scorer == TopKScorerKind::kProjection) {
      projections_.push_back(autograd::Variable::Parameter(
          nn::GlorotUniform(config.hidden_dim, 1, rng)));
    } else {
      score_convs_.push_back(
          std::make_unique<nn::GcnConv>(config.hidden_dim, 1, rng));
    }
  }
}

train::GraphModel::Out TopKGraphModel::Forward(const graph::GraphBatch& batch,
                                               bool training,
                                               util::Rng* rng) {
  last_coverage_.clear();
  autograd::Variable all_logits;
  for (size_t gi = 0; gi < batch.num_graphs(); ++gi) {
    MemberGraph member = ExtractMember(batch, gi);
    autograd::Variable h =
        autograd::Variable::Constant(std::move(member.features));
    graph::SparseMatrix adj = std::move(member.adjacency);
    const size_t original_n = member.num_nodes;
    size_t surviving = original_n;

    autograd::Variable readout_sum;
    for (int l = 0; l < config_.num_levels; ++l) {
      auto norm =
          std::make_shared<const graph::SparseMatrix>(adj.Normalized());
      h = autograd::Relu(
          convs_[static_cast<size_t>(l)]->Forward(norm, h));
      h = dropout_.Apply(h, rng, training);

      autograd::Variable score =
          config_.scorer == TopKScorerKind::kProjection
              ? ProjectionScore(h, projections_[static_cast<size_t>(l)])
              : score_convs_[static_cast<size_t>(l)]->Forward(norm, h);

      std::vector<size_t> idx = TopKIndices(score.value(), config_.ratio);
      surviving = idx.size();
      autograd::Variable gate =
          autograd::Tanh(autograd::GatherRows(score, idx));
      h = autograd::MulColBroadcast(autograd::GatherRows(h, idx), gate);
      adj = SparseSubmatrix(adj, idx);

      autograd::Variable readout = ReadoutMeanMax(h);
      readout_sum = readout_sum.defined()
                        ? autograd::Add(readout_sum, readout)
                        : readout;
      if (idx.size() < 2) break;
    }
    last_coverage_.push_back(static_cast<double>(surviving) /
                             static_cast<double>(original_n));

    autograd::Variable logits = head_.Forward(readout_sum);
    all_logits = all_logits.defined()
                     ? autograd::ConcatRows(all_logits, logits)
                     : logits;
  }
  return {all_logits, autograd::Variable()};
}

std::vector<autograd::Variable> TopKGraphModel::Parameters() const {
  std::vector<autograd::Variable> params;
  for (const auto& c : convs_) {
    for (auto& p : c->Parameters()) params.push_back(p);
  }
  for (const auto& p : projections_) params.push_back(p);
  for (const auto& c : score_convs_) {
    for (auto& p : c->Parameters()) params.push_back(p);
  }
  for (auto& p : head_.Parameters()) params.push_back(p);
  return params;
}

GraphUNetBackbone::GraphUNetBackbone(const GraphUNetConfig& config,
                                     util::Rng* rng)
    : config_(config),
      conv_in_(config.in_dim, config.hidden_dim, rng),
      conv_mid_(config.hidden_dim, config.hidden_dim, rng),
      conv_out_(config.hidden_dim, config.hidden_dim, rng),
      projection_(autograd::Variable::Parameter(
          nn::GlorotUniform(config.hidden_dim, 1, rng))),
      dropout_(config.dropout) {
  ADAMGNN_CHECK_GT(config.in_dim, 0u);
  if (config.num_classes > 0) {
    head_ = std::make_unique<nn::Linear>(config.hidden_dim,
                                         config.num_classes,
                                         /*use_bias=*/true, rng);
  }
}

GraphUNetBackbone::Out GraphUNetBackbone::Run(const graph::Graph& g,
                                              bool training, util::Rng* rng) {
  graph::SparseMatrix adj = graph::SparseMatrix::Adjacency(g);
  auto norm = std::make_shared<const graph::SparseMatrix>(adj.Normalized());

  autograd::Variable h = autograd::Relu(
      conv_in_.Forward(norm, autograd::Variable::Constant(g.features())));
  h = dropout_.Apply(h, rng, training);

  // Down: pool to the top-ratio nodes.
  autograd::Variable score = ProjectionScore(h, projection_);
  std::vector<size_t> idx = TopKIndices(score.value(), config_.ratio);
  autograd::Variable gate = autograd::Tanh(autograd::GatherRows(score, idx));
  autograd::Variable h_pool =
      autograd::MulColBroadcast(autograd::GatherRows(h, idx), gate);
  auto norm_pool = std::make_shared<const graph::SparseMatrix>(
      SparseSubmatrix(adj, idx).Normalized());
  autograd::Variable h_mid =
      autograd::Relu(conv_mid_.Forward(norm_pool, h_pool));
  h_mid = dropout_.Apply(h_mid, rng, training);

  // Up: scatter back to all nodes plus skip connection, then smooth.
  autograd::Variable h_up =
      autograd::Add(h, autograd::ScatterRows(h_mid, idx, g.num_nodes()));
  autograd::Variable embeddings = conv_out_.Forward(norm, h_up);

  Out out;
  out.embeddings = embeddings;
  if (head_ != nullptr) {
    out.logits = head_->Forward(
        dropout_.Apply(autograd::Relu(embeddings), rng, training));
  }
  return out;
}

std::vector<autograd::Variable> GraphUNetBackbone::Parameters() const {
  std::vector<autograd::Variable> params = conv_in_.Parameters();
  for (auto& p : conv_mid_.Parameters()) params.push_back(p);
  for (auto& p : conv_out_.Parameters()) params.push_back(p);
  params.push_back(projection_);
  if (head_ != nullptr) {
    for (auto& p : head_->Parameters()) params.push_back(p);
  }
  return params;
}

GraphUNetNodeModel::GraphUNetNodeModel(const GraphUNetConfig& config,
                                       util::Rng* rng)
    : backbone_(config, rng) {
  ADAMGNN_CHECK_GT(config.num_classes, 0u);
}

train::NodeModel::Out GraphUNetNodeModel::Forward(const graph::Graph& g,
                                                  bool training,
                                                  util::Rng* rng) {
  GraphUNetBackbone::Out b = backbone_.Run(g, training, rng);
  return {b.logits, autograd::Variable()};
}

std::vector<autograd::Variable> GraphUNetNodeModel::Parameters() const {
  return backbone_.Parameters();
}

GraphUNetEmbeddingModel::GraphUNetEmbeddingModel(
    const GraphUNetConfig& config, util::Rng* rng)
    : backbone_(config, rng) {}

train::EmbeddingModel::Out GraphUNetEmbeddingModel::Forward(
    const graph::Graph& g, bool training, util::Rng* rng) {
  GraphUNetBackbone::Out b = backbone_.Run(g, training, rng);
  return {b.embeddings, autograd::Variable()};
}

std::vector<autograd::Variable> GraphUNetEmbeddingModel::Parameters() const {
  return backbone_.Parameters();
}

}  // namespace adamgnn::pool
