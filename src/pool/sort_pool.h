// SortPool / DGCNN (Zhang et al. 2018): GCN layers, nodes sorted by their
// last feature channel, the top-k rows flattened into a fixed-size vector
// fed to a dense classifier head.

#ifndef ADAMGNN_POOL_SORT_POOL_H_
#define ADAMGNN_POOL_SORT_POOL_H_

#include <memory>
#include <vector>

#include "nn/dropout.h"
#include "nn/gcn_conv.h"
#include "nn/linear.h"
#include "pool/common.h"
#include "train/interfaces.h"
#include "util/random.h"

namespace adamgnn::pool {

struct SortPoolConfig {
  size_t in_dim = 0;
  size_t hidden_dim = 32;
  int num_classes = 2;
  int num_layers = 2;
  /// Nodes kept after sorting (graphs with fewer nodes are zero-padded).
  size_t k = 16;
  double dropout = 0.1;
};

class SortPoolGraphModel final : public train::GraphModel {
 public:
  SortPoolGraphModel(const SortPoolConfig& config, util::Rng* rng);

  Out Forward(const graph::GraphBatch& batch, bool training,
              util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

 private:
  SortPoolConfig config_;
  std::vector<std::unique_ptr<nn::GcnConv>> convs_;
  nn::Linear hidden_head_;
  nn::Linear out_head_;
  nn::Dropout dropout_;
};

}  // namespace adamgnn::pool

#endif  // ADAMGNN_POOL_SORT_POOL_H_
