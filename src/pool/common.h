// Shared helpers for the pooling baselines, which process each member graph
// of a batch independently (hierarchical pooling does not commute with
// block-diagonal batching for methods that need per-graph Top-k / dense
// assignments).

#ifndef ADAMGNN_POOL_COMMON_H_
#define ADAMGNN_POOL_COMMON_H_

#include <vector>

#include "autograd/ops.h"
#include "autograd/segment_ops.h"
#include "graph/batch.h"
#include "graph/sparse_matrix.h"
#include "tensor/matrix.h"

namespace adamgnn::pool {

/// One member graph's view extracted from a batch.
struct MemberGraph {
  size_t num_nodes = 0;
  tensor::Matrix features;        // (n x f)
  graph::SparseMatrix adjacency;  // (n x n), weighted, no self-loops
};

/// Extracts batch member `index` (features copied, adjacency rebuilt with
/// member-local node ids).
MemberGraph ExtractMember(const graph::GraphBatch& batch, size_t index);

/// Principal submatrix a[idx][idx] with rows/cols renumbered to 0..k-1.
graph::SparseMatrix SparseSubmatrix(const graph::SparseMatrix& a,
                                    const std::vector<size_t>& idx);

/// Indices of the top ⌈ratio·n⌉ rows of scores (n x 1), descending, ties by
/// smaller index. Always returns at least one index.
std::vector<size_t> TopKIndices(const tensor::Matrix& scores, double ratio);

/// [mean ‖ max] readout of h over all rows, as a (1 x 2d) variable.
autograd::Variable ReadoutMeanMax(const autograd::Variable& h);

}  // namespace adamgnn::pool

#endif  // ADAMGNN_POOL_COMMON_H_
