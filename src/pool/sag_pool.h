// SAGPool (Lee, Lee & Kang 2019): Top-k pooling whose node scores come from
// a self-attention GCN over the graph. Thin configuration of the shared
// top-k skeleton in pool/topk_pool.h.

#ifndef ADAMGNN_POOL_SAG_POOL_H_
#define ADAMGNN_POOL_SAG_POOL_H_

#include <memory>

#include "pool/topk_pool.h"

namespace adamgnn::pool {

/// Builds a SAGPool graph classifier (GCN scorer, otherwise the Top-k
/// hierarchy with the given ratio).
std::unique_ptr<TopKGraphModel> MakeSagPoolModel(size_t in_dim,
                                                 size_t hidden_dim,
                                                 int num_classes,
                                                 double ratio,
                                                 util::Rng* rng);

}  // namespace adamgnn::pool

#endif  // ADAMGNN_POOL_SAG_POOL_H_
