#include "pool/struct_pool.h"

namespace adamgnn::pool {

std::unique_ptr<DensePoolGraphModel> MakeStructPoolModel(size_t in_dim,
                                                         size_t hidden_dim,
                                                         int num_classes,
                                                         util::Rng* rng) {
  DensePoolConfig config;
  config.in_dim = in_dim;
  config.hidden_dim = hidden_dim;
  config.num_classes = num_classes;
  config.crf_iterations = 2;
  config.crf_weight = 0.5;
  return std::make_unique<DensePoolGraphModel>(config, rng);
}

}  // namespace adamgnn::pool
