// 3WL-GNN approximation (Maron et al. 2019, "Provably Powerful Graph
// Networks"). The full method operates on n² tensors; we implement a dense
// higher-order layer of matching cost profile that mixes 1- and 2-hop
// structure, H' = ReLU(H W₁ + ÂH W₂ + Â²H W₃), which captures the
// second-order interactions the comparison in Table 1 exercises. Flagged as
// an approximation in DESIGN.md / EXPERIMENTS.md.

#ifndef ADAMGNN_POOL_WL_GNN_H_
#define ADAMGNN_POOL_WL_GNN_H_

#include <memory>
#include <vector>

#include "nn/dropout.h"
#include "nn/linear.h"
#include "pool/common.h"
#include "train/interfaces.h"
#include "util/random.h"

namespace adamgnn::pool {

struct WlGnnConfig {
  size_t in_dim = 0;
  size_t hidden_dim = 64;
  int num_classes = 2;
  int num_layers = 2;
  double dropout = 0.1;
};

class WlGnnGraphModel final : public train::GraphModel {
 public:
  WlGnnGraphModel(const WlGnnConfig& config, util::Rng* rng);

  Out Forward(const graph::GraphBatch& batch, bool training,
              util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

 private:
  WlGnnConfig config_;
  std::vector<std::unique_ptr<nn::Linear>> w_self_;
  std::vector<std::unique_ptr<nn::Linear>> w_hop1_;
  std::vector<std::unique_ptr<nn::Linear>> w_hop2_;
  nn::Linear head_;
  nn::Dropout dropout_;
};

}  // namespace adamgnn::pool

#endif  // ADAMGNN_POOL_WL_GNN_H_
