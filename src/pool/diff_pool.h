// DiffPool (Ying et al. 2018): differentiable dense cluster-assignment
// pooling, S = softmax(GNN_pool(Â, X)), X' = SᵀZ, A' = SᵀÂS. Also hosts the
// StructPool approximation (Yuan & Ji 2020): the same dense assignment
// refined by mean-field CRF iterations that couple neighboring nodes'
// assignments (see DESIGN.md for the substitution note).
// Both are deliberately dense — that is the cost profile Table 4 contrasts
// against the sparse methods.

#ifndef ADAMGNN_POOL_DIFF_POOL_H_
#define ADAMGNN_POOL_DIFF_POOL_H_

#include <memory>
#include <vector>

#include "nn/dropout.h"
#include "nn/linear.h"
#include "pool/common.h"
#include "train/interfaces.h"
#include "util/random.h"

namespace adamgnn::pool {

struct DensePoolConfig {
  size_t in_dim = 0;
  size_t hidden_dim = 64;
  int num_classes = 2;
  /// Hyper-node counts per level.
  std::vector<size_t> cluster_sizes = {12, 4};
  /// > 0 enables StructPool's CRF refinement of the assignment.
  int crf_iterations = 0;
  double crf_weight = 0.5;
  double dropout = 0.1;
};

class DensePoolGraphModel final : public train::GraphModel {
 public:
  DensePoolGraphModel(const DensePoolConfig& config, util::Rng* rng);

  Out Forward(const graph::GraphBatch& batch, bool training,
              util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

 private:
  DensePoolConfig config_;
  // Per level: embedding GNN weights and assignment GNN weights (dense GCN:
  // H' = Â H W + b realized with Linear then premultiplying by Â).
  std::vector<std::unique_ptr<nn::Linear>> embed_;
  std::vector<std::unique_ptr<nn::Linear>> assign_;
  nn::Linear head_;
  nn::Dropout dropout_;
};

/// DiffPool as reported in Tables 1 and 4.
std::unique_ptr<DensePoolGraphModel> MakeDiffPoolModel(size_t in_dim,
                                                       size_t hidden_dim,
                                                       int num_classes,
                                                       util::Rng* rng);

}  // namespace adamgnn::pool

#endif  // ADAMGNN_POOL_DIFF_POOL_H_
