#include "pool/flat_models.h"

#include "autograd/ops.h"
#include "autograd/segment_ops.h"
#include "util/logging.h"

namespace adamgnn::pool {

const char* FlatGnnKindName(FlatGnnKind kind) {
  switch (kind) {
    case FlatGnnKind::kGcn:
      return "GCN";
    case FlatGnnKind::kSage:
      return "GraphSAGE";
    case FlatGnnKind::kGat:
      return "GAT";
    case FlatGnnKind::kGin:
      return "GIN";
  }
  return "?";
}

FlatGnnBackbone::FlatGnnBackbone(const FlatGnnConfig& config, util::Rng* rng)
    : config_(config), dropout_(config.dropout) {
  ADAMGNN_CHECK_GT(config.in_dim, 0u);
  ADAMGNN_CHECK_GE(config.num_layers, 1);
  for (int l = 0; l < config.num_layers; ++l) {
    const size_t in = l == 0 ? config.in_dim : config.hidden_dim;
    switch (config.kind) {
      case FlatGnnKind::kGcn:
        gcn_layers_.push_back(
            std::make_unique<nn::GcnConv>(in, config.hidden_dim, rng));
        break;
      case FlatGnnKind::kSage:
        sage_layers_.push_back(
            std::make_unique<nn::SageConv>(in, config.hidden_dim, rng));
        break;
      case FlatGnnKind::kGat:
        gat_layers_.push_back(
            std::make_unique<nn::GatConv>(in, config.hidden_dim, rng));
        break;
      case FlatGnnKind::kGin:
        gin_layers_.push_back(std::make_unique<nn::GinConv>(
            in, config.hidden_dim, config.hidden_dim, rng));
        break;
    }
  }
  if (config.num_classes > 0) {
    head_ = std::make_unique<nn::Linear>(config.hidden_dim,
                                         config.num_classes,
                                         /*use_bias=*/true, rng);
  }
}

FlatGnnBackbone::Out FlatGnnBackbone::Run(const graph::Graph& g,
                                          bool training, util::Rng* rng) {
  // Operators are rebuilt per call: cheap (O(m log m)) next to a training
  // step, and caching by graph address would be unsound for the temporary
  // batched graphs used in graph classification.
  std::shared_ptr<const graph::SparseMatrix> op;
  std::shared_ptr<const nn::EdgeIndex> edges;
  switch (config_.kind) {
    case FlatGnnKind::kGcn:
      op = std::make_shared<const graph::SparseMatrix>(
          graph::SparseMatrix::NormalizedAdjacency(g));
      break;
    case FlatGnnKind::kSage:
      op = nn::SageConv::MeanOperator(g);
      break;
    case FlatGnnKind::kGat:
      edges = nn::GatConv::BuildEdgeIndex(g);
      break;
    case FlatGnnKind::kGin:
      op = nn::GinConv::SumOperator(g);
      break;
  }

  autograd::Variable h = autograd::Variable::Constant(g.features());
  const int L = config_.num_layers;
  for (int l = 0; l < L; ++l) {
    switch (config_.kind) {
      case FlatGnnKind::kGcn:
        h = gcn_layers_[static_cast<size_t>(l)]->Forward(op, h);
        break;
      case FlatGnnKind::kSage:
        h = sage_layers_[static_cast<size_t>(l)]->Forward(op, h);
        break;
      case FlatGnnKind::kGat:
        h = gat_layers_[static_cast<size_t>(l)]->Forward(edges, h);
        break;
      case FlatGnnKind::kGin:
        h = gin_layers_[static_cast<size_t>(l)]->Forward(op, h);
        break;
    }
    // ReLU between layers; the last layer stays linear for embeddings.
    if (l + 1 < L) {
      h = autograd::Relu(h);
      h = dropout_.Apply(h, rng, training);
    }
  }

  Out out;
  out.embeddings = h;
  if (head_ != nullptr) {
    out.logits = head_->Forward(
        dropout_.Apply(autograd::Relu(h), rng, training));
  }
  return out;
}

std::vector<autograd::Variable> FlatGnnBackbone::Parameters() const {
  std::vector<autograd::Variable> params;
  auto append = [&params](const std::vector<autograd::Variable>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  for (const auto& l : gcn_layers_) append(l->Parameters());
  for (const auto& l : sage_layers_) append(l->Parameters());
  for (const auto& l : gat_layers_) append(l->Parameters());
  for (const auto& l : gin_layers_) append(l->Parameters());
  if (head_ != nullptr) append(head_->Parameters());
  return params;
}

FlatNodeModel::FlatNodeModel(const FlatGnnConfig& config, util::Rng* rng)
    : backbone_(config, rng) {
  ADAMGNN_CHECK_GT(config.num_classes, 0u);
}

train::NodeModel::Out FlatNodeModel::Forward(const graph::Graph& g,
                                             bool training, util::Rng* rng) {
  FlatGnnBackbone::Out b = backbone_.Run(g, training, rng);
  return {b.logits, autograd::Variable()};
}

std::vector<autograd::Variable> FlatNodeModel::Parameters() const {
  return backbone_.Parameters();
}

FlatEmbeddingModel::FlatEmbeddingModel(const FlatGnnConfig& config,
                                       util::Rng* rng)
    : backbone_(config, rng) {}

train::EmbeddingModel::Out FlatEmbeddingModel::Forward(const graph::Graph& g,
                                                       bool training,
                                                       util::Rng* rng) {
  FlatGnnBackbone::Out b = backbone_.Run(g, training, rng);
  return {b.embeddings, autograd::Variable()};
}

std::vector<autograd::Variable> FlatEmbeddingModel::Parameters() const {
  return backbone_.Parameters();
}

FlatGraphModel::FlatGraphModel(const FlatGnnConfig& config,
                               int num_graph_classes, util::Rng* rng)
    : backbone_([&config] {
        FlatGnnConfig c = config;
        c.num_classes = 0;  // readout head replaces the node head
        return c;
      }(), rng),
      readout_head_(2 * config.hidden_dim,
                    static_cast<size_t>(num_graph_classes),
                    /*use_bias=*/true, rng) {
  ADAMGNN_CHECK_GT(num_graph_classes, 0);
}

train::GraphModel::Out FlatGraphModel::Forward(const graph::GraphBatch& batch,
                                               bool training,
                                               util::Rng* rng) {
  FlatGnnBackbone::Out b = backbone_.Run(batch.merged, training, rng);
  autograd::Variable h = autograd::Relu(b.embeddings);
  autograd::Variable mean_read =
      autograd::SegmentMean(h, batch.node_to_graph, batch.num_graphs());
  autograd::Variable max_read =
      autograd::SegmentMax(h, batch.node_to_graph, batch.num_graphs());
  autograd::Variable logits =
      readout_head_.Forward(autograd::ConcatCols(mean_read, max_read));
  return {logits, autograd::Variable()};
}

std::vector<autograd::Variable> FlatGraphModel::Parameters() const {
  std::vector<autograd::Variable> params = backbone_.Parameters();
  for (auto& p : readout_head_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace adamgnn::pool
