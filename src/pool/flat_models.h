// Flat message-passing baselines (GCN, GraphSAGE, GAT, GIN) packaged as
// node-classification, link-prediction and graph-classification models —
// the "flat GNN" rows of the paper's Tables 1 and 2.

#ifndef ADAMGNN_POOL_FLAT_MODELS_H_
#define ADAMGNN_POOL_FLAT_MODELS_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "nn/dropout.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/gin_conv.h"
#include "nn/linear.h"
#include "nn/sage_conv.h"
#include "train/interfaces.h"
#include "util/random.h"

namespace adamgnn::pool {

enum class FlatGnnKind { kGcn, kSage, kGat, kGin };

const char* FlatGnnKindName(FlatGnnKind kind);

struct FlatGnnConfig {
  FlatGnnKind kind = FlatGnnKind::kGcn;
  size_t in_dim = 0;
  size_t hidden_dim = 64;
  /// 0 = no classification head (embedding mode).
  size_t num_classes = 0;
  int num_layers = 2;
  double dropout = 0.1;
};

/// Stacked flat GNN producing embeddings and (optionally) node logits.
class FlatGnnBackbone {
 public:
  FlatGnnBackbone(const FlatGnnConfig& config, util::Rng* rng);

  struct Out {
    autograd::Variable embeddings;  // (n x hidden)
    autograd::Variable logits;      // (n x classes) when a head exists
  };
  Out Run(const graph::Graph& g, bool training, util::Rng* rng);

  std::vector<autograd::Variable> Parameters() const;

 private:
  FlatGnnConfig config_;
  std::vector<std::unique_ptr<nn::GcnConv>> gcn_layers_;
  std::vector<std::unique_ptr<nn::SageConv>> sage_layers_;
  std::vector<std::unique_ptr<nn::GatConv>> gat_layers_;
  std::vector<std::unique_ptr<nn::GinConv>> gin_layers_;
  std::unique_ptr<nn::Linear> head_;
  nn::Dropout dropout_;
};

/// Adapters to the task interfaces.
class FlatNodeModel final : public train::NodeModel {
 public:
  FlatNodeModel(const FlatGnnConfig& config, util::Rng* rng);
  Out Forward(const graph::Graph& g, bool training, util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

 private:
  FlatGnnBackbone backbone_;
};

class FlatEmbeddingModel final : public train::EmbeddingModel {
 public:
  FlatEmbeddingModel(const FlatGnnConfig& config, util::Rng* rng);
  Out Forward(const graph::Graph& g, bool training, util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

 private:
  FlatGnnBackbone backbone_;
};

/// Flat graph classifier: backbone + [mean ‖ max] readout + linear head.
/// With kind = kGin this is the paper's GIN baseline.
class FlatGraphModel final : public train::GraphModel {
 public:
  FlatGraphModel(const FlatGnnConfig& config, int num_graph_classes,
                 util::Rng* rng);
  Out Forward(const graph::GraphBatch& batch, bool training,
              util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

 private:
  FlatGnnBackbone backbone_;
  nn::Linear readout_head_;
};

}  // namespace adamgnn::pool

#endif  // ADAMGNN_POOL_FLAT_MODELS_H_
