// Top-k selection pooling (Gao & Ji 2019, "Graph U-Nets") and its
// self-attention variant SAGPool (Lee et al. 2019). Both share the skeleton
//   score -> keep top ⌈ratio·n⌉ nodes -> gate kept features by tanh(score);
// they differ only in the scorer: a learnable projection (TopKPool) vs. a
// GCN over the graph (SAGPool). These are the paper's Top-k baselines whose
// fixed ratio AdamGNN's adaptive selection removes.

#ifndef ADAMGNN_POOL_TOPK_POOL_H_
#define ADAMGNN_POOL_TOPK_POOL_H_

#include <memory>
#include <vector>

#include "nn/dropout.h"
#include "nn/gcn_conv.h"
#include "nn/linear.h"
#include "pool/common.h"
#include "train/interfaces.h"
#include "util/random.h"

namespace adamgnn::pool {

enum class TopKScorerKind {
  kProjection,  // TopKPool: s = X p / ‖p‖
  kGcn,         // SAGPool: s = GCN(Â, X)
};

struct TopKGraphConfig {
  TopKScorerKind scorer = TopKScorerKind::kProjection;
  size_t in_dim = 0;
  size_t hidden_dim = 64;
  int num_classes = 2;
  int num_levels = 2;
  /// The pooling-ratio hyper-parameter k (see paper Appendix A.1 /
  /// Figure 3 for its coverage implications).
  double ratio = 0.5;
  double dropout = 0.1;
};

/// Hierarchical graph classifier: per level GCN -> top-k pool, readouts of
/// all levels summed, linear head.
class TopKGraphModel final : public train::GraphModel {
 public:
  TopKGraphModel(const TopKGraphConfig& config, util::Rng* rng);

  Out Forward(const graph::GraphBatch& batch, bool training,
              util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

  /// Fraction of each input graph's nodes that survive all pooling levels
  /// during the most recent Forward call (for the Figure 3 experiment).
  const std::vector<double>& last_coverage() const { return last_coverage_; }

 private:
  TopKGraphConfig config_;
  std::vector<std::unique_ptr<nn::GcnConv>> convs_;
  std::vector<autograd::Variable> projections_;        // per level (d x 1)
  std::vector<std::unique_ptr<nn::GcnConv>> score_convs_;  // SAGPool scorer
  nn::Linear head_;
  nn::Dropout dropout_;
  std::vector<double> last_coverage_;
};

struct GraphUNetConfig {
  size_t in_dim = 0;
  size_t hidden_dim = 64;
  /// 0 = embedding mode (link prediction).
  size_t num_classes = 0;
  double ratio = 0.5;
  double dropout = 0.1;
};

/// Graph U-Net for node-level tasks (the TOPKPOOL rows of Table 2):
/// GCN -> top-k pool -> GCN -> unpool (scatter + skip) -> GCN.
class GraphUNetBackbone {
 public:
  GraphUNetBackbone(const GraphUNetConfig& config, util::Rng* rng);

  struct Out {
    autograd::Variable embeddings;
    autograd::Variable logits;  // defined when num_classes > 0
  };
  Out Run(const graph::Graph& g, bool training, util::Rng* rng);

  std::vector<autograd::Variable> Parameters() const;

 private:
  GraphUNetConfig config_;
  nn::GcnConv conv_in_;
  nn::GcnConv conv_mid_;
  nn::GcnConv conv_out_;
  autograd::Variable projection_;  // (hidden x 1)
  std::unique_ptr<nn::Linear> head_;
  nn::Dropout dropout_;
};

class GraphUNetNodeModel final : public train::NodeModel {
 public:
  GraphUNetNodeModel(const GraphUNetConfig& config, util::Rng* rng);
  Out Forward(const graph::Graph& g, bool training, util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

 private:
  GraphUNetBackbone backbone_;
};

class GraphUNetEmbeddingModel final : public train::EmbeddingModel {
 public:
  GraphUNetEmbeddingModel(const GraphUNetConfig& config, util::Rng* rng);
  Out Forward(const graph::Graph& g, bool training, util::Rng* rng) override;
  std::vector<autograd::Variable> Parameters() const override;

 private:
  GraphUNetBackbone backbone_;
};

}  // namespace adamgnn::pool

#endif  // ADAMGNN_POOL_TOPK_POOL_H_
