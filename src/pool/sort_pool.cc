#include "pool/sort_pool.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace adamgnn::pool {

SortPoolGraphModel::SortPoolGraphModel(const SortPoolConfig& config,
                                       util::Rng* rng)
    : config_(config),
      hidden_head_(config.k * config.hidden_dim, config.hidden_dim,
                   /*use_bias=*/true, rng),
      out_head_(config.hidden_dim, static_cast<size_t>(config.num_classes),
                /*use_bias=*/true, rng),
      dropout_(config.dropout) {
  ADAMGNN_CHECK_GT(config.in_dim, 0u);
  ADAMGNN_CHECK_GE(config.num_layers, 1);
  ADAMGNN_CHECK_GT(config.k, 0u);
  for (int l = 0; l < config.num_layers; ++l) {
    const size_t in = l == 0 ? config.in_dim : config.hidden_dim;
    convs_.push_back(
        std::make_unique<nn::GcnConv>(in, config.hidden_dim, rng));
  }
}

train::GraphModel::Out SortPoolGraphModel::Forward(
    const graph::GraphBatch& batch, bool training, util::Rng* rng) {
  autograd::Variable all_logits;
  for (size_t gi = 0; gi < batch.num_graphs(); ++gi) {
    MemberGraph member = ExtractMember(batch, gi);
    auto norm = std::make_shared<const graph::SparseMatrix>(
        member.adjacency.Normalized());
    autograd::Variable h =
        autograd::Variable::Constant(std::move(member.features));
    for (size_t l = 0; l < convs_.size(); ++l) {
      h = autograd::Tanh(convs_[l]->Forward(norm, h));
    }

    // Sort by the last channel (descending), keep at most k.
    const size_t n = h.rows();
    const size_t last = h.cols() - 1;
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    const tensor::Matrix& hv = h.value();
    std::sort(order.begin(), order.end(), [&hv, last](size_t a, size_t b) {
      if (hv(a, last) != hv(b, last)) return hv(a, last) > hv(b, last);
      return a < b;
    });
    const size_t kept = std::min(config_.k, n);
    order.resize(kept);
    autograd::Variable top = autograd::GatherRows(h, order);
    if (kept < config_.k) {
      // Zero-pad shorter graphs to the fixed k rows.
      std::vector<size_t> positions(kept);
      std::iota(positions.begin(), positions.end(), 0);
      top = autograd::ScatterRows(top, positions, config_.k);
    }
    autograd::Variable flat =
        autograd::Reshape(top, 1, config_.k * config_.hidden_dim);
    autograd::Variable hidden = autograd::Relu(hidden_head_.Forward(flat));
    hidden = dropout_.Apply(hidden, rng, training);
    autograd::Variable logits = out_head_.Forward(hidden);
    all_logits = all_logits.defined()
                     ? autograd::ConcatRows(all_logits, logits)
                     : logits;
  }
  return {all_logits, autograd::Variable()};
}

std::vector<autograd::Variable> SortPoolGraphModel::Parameters() const {
  std::vector<autograd::Variable> params;
  for (const auto& c : convs_) {
    for (auto& p : c->Parameters()) params.push_back(p);
  }
  for (auto& p : hidden_head_.Parameters()) params.push_back(p);
  for (auto& p : out_head_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace adamgnn::pool
