#include "pool/sag_pool.h"

namespace adamgnn::pool {

std::unique_ptr<TopKGraphModel> MakeSagPoolModel(size_t in_dim,
                                                 size_t hidden_dim,
                                                 int num_classes,
                                                 double ratio,
                                                 util::Rng* rng) {
  TopKGraphConfig config;
  config.scorer = TopKScorerKind::kGcn;
  config.in_dim = in_dim;
  config.hidden_dim = hidden_dim;
  config.num_classes = num_classes;
  config.ratio = ratio;
  return std::make_unique<TopKGraphModel>(config, rng);
}

}  // namespace adamgnn::pool
