// Full-batch node-classification training loop with validation-based early
// stopping, following the paper's protocol (80/10/10 labelled nodes).

#ifndef ADAMGNN_TRAIN_NODE_TRAINER_H_
#define ADAMGNN_TRAIN_NODE_TRAINER_H_

#include "data/splits.h"
#include "graph/graph.h"
#include "train/interfaces.h"
#include "util/status.h"

namespace adamgnn::train {

struct TrainConfig {
  int max_epochs = 200;
  double learning_rate = 0.01;
  double weight_decay = 5e-4;
  /// Stop after this many epochs without validation improvement.
  int patience = 30;
  double clip_norm = 5.0;
  uint64_t seed = 1;
  bool verbose = false;
};

struct NodeTaskResult {
  double train_accuracy = 0;
  double val_accuracy = 0;
  /// Test accuracy at the best-validation epoch.
  double test_accuracy = 0;
  int best_epoch = 0;
  int epochs_run = 0;
  /// Mean wall time of one training epoch (seconds) — Table 4's metric.
  double avg_epoch_seconds = 0;
};

/// Trains `model` on g's labels. The graph must carry labels and features.
util::Result<NodeTaskResult> TrainNodeClassifier(NodeModel* model,
                                                 const graph::Graph& g,
                                                 const data::IndexSplit& split,
                                                 const TrainConfig& config);

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_NODE_TRAINER_H_
