// Full-batch node-classification training loop with validation-based early
// stopping, following the paper's protocol (80/10/10 labelled nodes).

#ifndef ADAMGNN_TRAIN_NODE_TRAINER_H_
#define ADAMGNN_TRAIN_NODE_TRAINER_H_

#include <vector>

#include "data/splits.h"
#include "graph/graph.h"
#include "nn/serialize.h"
#include "train/interfaces.h"
#include "util/status.h"

namespace adamgnn::train {

// TrainConfig (shared by all task trainers) lives in train/interfaces.h.

struct NodeTaskResult {
  double train_accuracy = 0;
  double val_accuracy = 0;
  /// Test accuracy at the best-validation epoch.
  double test_accuracy = 0;
  int best_epoch = 0;
  int epochs_run = 0;
  /// Mean wall time of one training epoch (seconds) — Table 4's metric.
  double avg_epoch_seconds = 0;
  /// Per-epoch training loss and wall seconds for the epochs this run
  /// executed, in order. bench_epoch compares `epoch_losses` across sparse
  /// engines bitwise to prove an optimization changed speed, not math.
  std::vector<double> epoch_losses;
  std::vector<double> epoch_seconds;
  /// Absolute epoch the run resumed from, or -1 on a cold start.
  int resumed_from_epoch = -1;
  /// Divergence rollbacks performed during (or before, if resumed) the run.
  std::vector<nn::RecoveryEvent> recovery_events;
};

/// Trains `model` on g's labels. The graph must carry labels and features.
util::Result<NodeTaskResult> TrainNodeClassifier(NodeModel* model,
                                                 const graph::Graph& g,
                                                 const data::IndexSplit& split,
                                                 const TrainConfig& config);

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_NODE_TRAINER_H_
