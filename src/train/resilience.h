// Shared crash/divergence resilience for the three training loops. One
// TrainingResilience object per run owns:
//
//  - resume: restoring parameters, Adam moments, RNG state, and
//    early-stopping bookkeeping from a v2 checkpoint so a resumed run is
//    bitwise-identical to an uninterrupted one,
//  - periodic crash-safe checkpointing at epoch boundaries,
//  - the non-finite guard: when the loss or the gradient norm stops being
//    finite, parameters and moments roll back to the last finite epoch,
//    the learning rate is scaled down, and the incident is recorded —
//    bounded by max_lr_retries, after which the run fails loudly.
//
// The guard also hosts the loss-poisoning hook of the deterministic fault
// injector (util/fault_injection.h), so divergence handling is provable in
// tests instead of hoped-for in production.

#ifndef ADAMGNN_TRAIN_RESILIENCE_H_
#define ADAMGNN_TRAIN_RESILIENCE_H_

#include <string>
#include <vector>

#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "train/interfaces.h"
#include "util/random.h"
#include "util/status.h"

namespace adamgnn::train {

class TrainingResilience {
 public:
  /// `optimizer` and `rng` must outlive this object; the guarded
  /// parameters are the optimizer's own parameter handles.
  TrainingResilience(const TrainConfig& config, nn::Adam* optimizer,
                     util::Rng* rng);

  /// Performs the resume handshake. Returns the absolute epoch index the
  /// loop should start from: 0 on a cold start (no checkpoint configured,
  /// or config.resume unset, or the file does not exist yet), the saved
  /// next_epoch when a checkpoint was restored. Corrupt or mismatched
  /// checkpoints are errors, not silent cold starts.
  util::Result<int> Initialize();

  /// Bookkeeping shared with the loop (best-val metrics, stale counter).
  /// The loop reads and writes this directly; checkpoints persist it.
  nn::TrainingState& state() { return state_; }

  /// Epoch the run resumed from, or -1 on a cold start.
  int resumed_from_epoch() const { return resumed_from_; }

  /// Recovery incidents so far (restored ones included).
  const std::vector<nn::RecoveryEvent>& recovery_events() const {
    return state_.recovery_events;
  }

  /// Pre-backward check. Applies injected loss poisoning, then tests
  /// `*loss_value` for finiteness. Returns false when the epoch may
  /// proceed; true when a recovery was performed and the loop should skip
  /// straight to the next epoch; an error when retries are exhausted.
  util::Result<bool> GuardLoss(int epoch, double* loss_value);

  /// Post-backward check on the (pre-clip) gradient norm; same contract.
  util::Result<bool> GuardGradNorm(int epoch, double grad_norm);

  /// Marks `epoch` complete: refreshes the rollback snapshot and writes a
  /// periodic checkpoint when one is due.
  util::Status CompleteEpoch(int epoch);

  /// Final checkpoint after the loop (so --resume on a finished run is a
  /// cheap no-op instead of retraining). No-op without a checkpoint path.
  util::Status Finalize(int epochs_run);

 private:
  util::Result<bool> Recover(int epoch, nn::RecoveryEvent::Kind kind);
  util::Status SaveCheckpoint();
  void CaptureLastGood();

  TrainConfig config_;
  nn::Adam* optimizer_;
  util::Rng* rng_;
  nn::TrainingState state_;
  int resumed_from_ = -1;
  nn::ParameterSnapshot last_good_params_;
  nn::Adam::State last_good_moments_;
};

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_RESILIENCE_H_
