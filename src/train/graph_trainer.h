// Graph-classification training loop: mini-batches of graphs merged into
// block-diagonal batches (80/10/10 split over graphs, as in the paper).

#ifndef ADAMGNN_TRAIN_GRAPH_TRAINER_H_
#define ADAMGNN_TRAIN_GRAPH_TRAINER_H_

#include <vector>

#include "data/graph_datasets.h"
#include "data/splits.h"
#include "nn/serialize.h"
#include "train/interfaces.h"
#include "train/node_trainer.h"
#include "util/status.h"

namespace adamgnn::train {

struct GraphTaskResult {
  double train_accuracy = 0;
  double val_accuracy = 0;
  double test_accuracy = 0;
  int best_epoch = 0;
  int epochs_run = 0;
  double avg_epoch_seconds = 0;
  /// Absolute epoch the run resumed from, or -1 on a cold start.
  int resumed_from_epoch = -1;
  /// Divergence rollbacks performed during (or before, if resumed) the run.
  std::vector<nn::RecoveryEvent> recovery_events;
};

/// Trains `model` on dataset.graphs indexed by `split`.
util::Result<GraphTaskResult> TrainGraphClassifier(
    GraphModel* model, const data::GraphDataset& dataset,
    const data::IndexSplit& split, const TrainConfig& config,
    size_t batch_size = 32);

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_GRAPH_TRAINER_H_
