#include "train/node_trainer.h"

#include "autograd/loss_ops.h"
#include "autograd/ops.h"
#include "nn/optimizer.h"
#include "train/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace adamgnn::train {

util::Result<NodeTaskResult> TrainNodeClassifier(
    NodeModel* model, const graph::Graph& g, const data::IndexSplit& split,
    const TrainConfig& config) {
  if (model == nullptr) {
    return util::Status::InvalidArgument("null model");
  }
  if (!g.has_labels() || !g.has_features()) {
    return util::Status::InvalidArgument(
        "node classification needs labels and features");
  }
  if (split.train.empty() || split.val.empty() || split.test.empty()) {
    return util::Status::InvalidArgument("empty split");
  }

  util::Rng rng(config.seed);
  nn::Adam optimizer(model->Parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);

  NodeTaskResult result;
  double best_val = -1.0;
  int stale = 0;
  double total_epoch_time = 0.0;

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    util::Stopwatch watch;
    NodeModel::Out out = model->Forward(g, /*training=*/true, &rng);
    autograd::Variable loss =
        autograd::SoftmaxCrossEntropy(out.logits, g.labels(), split.train);
    if (out.aux_loss.defined()) loss = autograd::Add(loss, out.aux_loss);
    autograd::Backward(loss);
    nn::ClipGradNorm(optimizer.params(), config.clip_norm);
    optimizer.Step();
    total_epoch_time += watch.ElapsedSeconds();
    result.epochs_run = epoch + 1;

    // Evaluation pass without dropout.
    NodeModel::Out eval = model->Forward(g, /*training=*/false, &rng);
    const double val_acc = Accuracy(eval.logits.value(), g.labels(),
                                    split.val);
    if (config.verbose) {
      ADAMGNN_LOG(Info) << "epoch " << epoch << " loss "
                        << loss.value()(0, 0) << " val " << val_acc;
    }
    if (val_acc > best_val) {
      best_val = val_acc;
      result.best_epoch = epoch;
      result.val_accuracy = val_acc;
      result.train_accuracy =
          Accuracy(eval.logits.value(), g.labels(), split.train);
      result.test_accuracy =
          Accuracy(eval.logits.value(), g.labels(), split.test);
      stale = 0;
    } else if (++stale >= config.patience) {
      break;
    }
  }
  result.avg_epoch_seconds =
      total_epoch_time / static_cast<double>(result.epochs_run);
  return result;
}

}  // namespace adamgnn::train
