#include "train/node_trainer.h"

#include "autograd/loss_ops.h"
#include "autograd/ops.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "tensor/workspace.h"
#include "train/metrics.h"
#include "train/resilience.h"
#include "train/telemetry.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace adamgnn::train {

util::Result<NodeTaskResult> TrainNodeClassifier(
    NodeModel* model, const graph::Graph& g, const data::IndexSplit& split,
    const TrainConfig& config) {
  if (model == nullptr) {
    return util::Status::InvalidArgument("null model");
  }
  if (!g.has_labels() || !g.has_features()) {
    return util::Status::InvalidArgument(
        "node classification needs labels and features");
  }
  if (split.train.empty() || split.val.empty() || split.test.empty()) {
    return util::Status::InvalidArgument("empty split");
  }

  // Epochs churn through thousands of same-shaped matrices; the arena hands
  // each epoch the previous epoch's storage back. Declared before the
  // optimizer so the optimizer's buffers drain into it on scope exit.
  tensor::Workspace workspace;
  tensor::Workspace::Bind workspace_bind(&workspace);

  util::Rng rng(config.seed);
  nn::Adam optimizer(model->Parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);
  TrainingResilience resilience(config, &optimizer, &rng);
  ADAMGNN_ASSIGN_OR_RETURN(int start_epoch, resilience.Initialize());
  nn::TrainingState& st = resilience.state();

  NodeTaskResult result;
  result.epochs_run = start_epoch;

  for (int epoch = start_epoch; epoch < config.max_epochs; ++epoch) {
    util::Stopwatch watch;
    obs::TraceSpan epoch_span("train.epoch");
    epoch_span.Note("epoch", static_cast<double>(epoch));
    EpochPhases phases;
    util::Stopwatch phase_watch;
    NodeModel::Out out = model->Forward(g, /*training=*/true, &rng);
    autograd::Variable loss =
        autograd::SoftmaxCrossEntropy(out.logits, g.labels(), split.train);
    if (out.aux_loss.defined()) loss = autograd::Add(loss, out.aux_loss);
    phases.forward_secs = phase_watch.ElapsedSeconds();

    double loss_value = loss.value()(0, 0);
    double grad_norm = 0.0;
    ADAMGNN_ASSIGN_OR_RETURN(bool recovered,
                             resilience.GuardLoss(epoch, &loss_value));
    if (!recovered) {
      phase_watch.Restart();
      autograd::Backward(loss);
      grad_norm = nn::ClipGradNorm(optimizer.params(), config.clip_norm);
      phases.backward_secs = phase_watch.ElapsedSeconds();
      ADAMGNN_ASSIGN_OR_RETURN(recovered,
                               resilience.GuardGradNorm(epoch, grad_norm));
    }
    if (recovered) {
      const double epoch_secs = watch.ElapsedSeconds();
      st.total_epoch_seconds += epoch_secs;
      result.epoch_losses.push_back(loss_value);
      result.epoch_seconds.push_back(epoch_secs);
      result.epochs_run = epoch + 1;
      epoch_span.Note("recovered", 1.0);
      RecordEpochMetrics(epoch_secs, loss_value, grad_norm, phases,
                         &workspace);
      continue;  // parameters were rolled back; nothing new to evaluate
    }
    phase_watch.Restart();
    optimizer.Step();
    phases.optimizer_secs = phase_watch.ElapsedSeconds();
    const double epoch_secs = watch.ElapsedSeconds();
    st.total_epoch_seconds += epoch_secs;
    result.epoch_losses.push_back(loss_value);
    result.epoch_seconds.push_back(epoch_secs);
    result.epochs_run = epoch + 1;

    // Evaluation pass without dropout, tape-free where the model supports it.
    phase_watch.Restart();
    NodeModel::Out eval = model->Evaluate(g, &rng);
    const double val_acc = Accuracy(eval.logits.value(), g.labels(),
                                    split.val);
    if (config.verbose) {
      ADAMGNN_LOG(Info) << "epoch " << epoch << " loss " << loss_value
                        << " val " << val_acc;
    }
    if (val_acc > st.best_val) {
      st.best_val = val_acc;
      st.best_epoch = epoch;
      st.best_val_metric = val_acc;
      st.best_train_metric =
          Accuracy(eval.logits.value(), g.labels(), split.train);
      st.best_test_metric =
          Accuracy(eval.logits.value(), g.labels(), split.test);
      st.stale_epochs = 0;
    } else {
      ++st.stale_epochs;
    }
    phases.eval_secs = phase_watch.ElapsedSeconds();
    epoch_span.Note("loss", loss_value);
    epoch_span.Note("grad_norm", grad_norm);
    epoch_span.Note("val_metric", val_acc);
    RecordEpochMetrics(epoch_secs, loss_value, grad_norm, phases, &workspace);
    ADAMGNN_RETURN_NOT_OK(resilience.CompleteEpoch(epoch));
    if (st.stale_epochs >= config.patience) break;
  }
  ADAMGNN_RETURN_NOT_OK(resilience.Finalize(result.epochs_run));

  result.best_epoch = static_cast<int>(st.best_epoch);
  result.val_accuracy = st.best_val_metric;
  result.train_accuracy = st.best_train_metric;
  result.test_accuracy = st.best_test_metric;
  result.resumed_from_epoch = resilience.resumed_from_epoch();
  result.recovery_events = resilience.recovery_events();
  result.avg_epoch_seconds =
      result.epochs_run > 0
          ? st.total_epoch_seconds / static_cast<double>(result.epochs_run)
          : 0.0;
  return result;
}

}  // namespace adamgnn::train
