// Shared training telemetry: the three task trainers (node, link, graph)
// publish the same per-epoch metric set through RecordEpochMetrics so the
// metric names cannot drift between tasks. Everything routes through
// obs::MetricsRegistry handles; when the observability layer is disabled
// (runtime) or compiled out (ADAMGNN_OBS=OFF) these calls are no-ops and the
// trainers' math is untouched either way — instrumentation never reads or
// writes RNG state, parameters, or activations, so loss trajectories stay
// bitwise identical.

#ifndef ADAMGNN_TRAIN_TELEMETRY_H_
#define ADAMGNN_TRAIN_TELEMETRY_H_

#include "obs/metrics.h"
#include "tensor/workspace.h"

namespace adamgnn::train {

/// Wall-time breakdown of one training epoch, accumulated by the trainer
/// (the graph trainer sums across mini-batches).
struct EpochPhases {
  double forward_secs = 0.0;    // model Forward + loss construction
  double backward_secs = 0.0;   // Backward + gradient clipping
  double optimizer_secs = 0.0;  // optimizer Step
  double eval_secs = 0.0;       // validation/test evaluation passes
};

/// Publishes one finished epoch: epoch/phase latency histograms, loss and
/// grad-norm gauges, the train.epochs counter, and — when `workspace` is
/// non-null — the arena's hit/miss/eviction/retained gauges.
inline void RecordEpochMetrics(double epoch_secs, double loss,
                               double grad_norm, const EpochPhases& phases,
                               const tensor::Workspace* workspace) {
  // Leaky handles: registered once, process-lifetime, safe from any thread.
  static obs::Counter* epochs = new obs::Counter("train.epochs");
  static obs::Gauge* loss_gauge = new obs::Gauge("train.loss");
  static obs::Gauge* grad_gauge = new obs::Gauge("train.grad_norm");
  static obs::Histogram* epoch_hist = new obs::Histogram(
      "train.epoch_seconds", obs::LatencyBucketBounds());
  static obs::Histogram* forward_hist = new obs::Histogram(
      "train.forward_seconds", obs::LatencyBucketBounds());
  static obs::Histogram* backward_hist = new obs::Histogram(
      "train.backward_seconds", obs::LatencyBucketBounds());
  static obs::Histogram* optimizer_hist = new obs::Histogram(
      "train.optimizer_seconds", obs::LatencyBucketBounds());
  static obs::Histogram* eval_hist = new obs::Histogram(
      "train.eval_seconds", obs::LatencyBucketBounds());
  static obs::Gauge* ws_hits = new obs::Gauge("workspace.hits");
  static obs::Gauge* ws_misses = new obs::Gauge("workspace.misses");
  static obs::Gauge* ws_evictions = new obs::Gauge("workspace.evictions");
  static obs::Gauge* ws_retained_buffers =
      new obs::Gauge("workspace.retained_buffers");
  static obs::Gauge* ws_retained_bytes =
      new obs::Gauge("workspace.retained_bytes");

  if (!obs::Enabled()) return;
  epochs->Add();
  loss_gauge->Set(loss);
  grad_gauge->Set(grad_norm);
  epoch_hist->Observe(epoch_secs);
  forward_hist->Observe(phases.forward_secs);
  backward_hist->Observe(phases.backward_secs);
  optimizer_hist->Observe(phases.optimizer_secs);
  eval_hist->Observe(phases.eval_secs);
  if (workspace != nullptr) {
    const tensor::Workspace::Stats ws = workspace->stats();
    ws_hits->Set(static_cast<double>(ws.hits));
    ws_misses->Set(static_cast<double>(ws.misses));
    ws_evictions->Set(static_cast<double>(ws.evictions));
    ws_retained_buffers->Set(static_cast<double>(ws.retained_buffers));
    ws_retained_bytes->Set(
        static_cast<double>(ws.retained_doubles * sizeof(double)));
  }
}

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_TELEMETRY_H_
