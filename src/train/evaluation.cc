#include "train/evaluation.h"

#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace adamgnn::train {

util::Result<ConfusionMatrix> ConfusionMatrix::FromPredictions(
    const std::vector<int>& predicted, const std::vector<int>& truth,
    int num_classes) {
  if (predicted.size() != truth.size()) {
    return util::Status::InvalidArgument("size mismatch");
  }
  if (predicted.empty()) {
    return util::Status::InvalidArgument("empty predictions");
  }
  if (num_classes < 1) {
    return util::Status::InvalidArgument("num_classes must be >= 1");
  }
  ConfusionMatrix m(num_classes);
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] < 0 || predicted[i] >= num_classes || truth[i] < 0 ||
        truth[i] >= num_classes) {
      return util::Status::InvalidArgument("label out of range at item " +
                                           std::to_string(i));
    }
    ++m.counts_[static_cast<size_t>(truth[i]) *
                    static_cast<size_t>(num_classes) +
                static_cast<size_t>(predicted[i])];
    ++m.total_;
  }
  return m;
}

size_t ConfusionMatrix::count(int truth, int predicted) const {
  ADAMGNN_CHECK_GE(truth, 0);
  ADAMGNN_CHECK_LT(truth, num_classes_);
  ADAMGNN_CHECK_GE(predicted, 0);
  ADAMGNN_CHECK_LT(predicted, num_classes_);
  return counts_[static_cast<size_t>(truth) *
                     static_cast<size_t>(num_classes_) +
                 static_cast<size_t>(predicted)];
}

double ConfusionMatrix::Accuracy() const {
  size_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(int cls) const {
  size_t tp = count(cls, cls);
  size_t predicted_cls = 0;
  for (int t = 0; t < num_classes_; ++t) predicted_cls += count(t, cls);
  return predicted_cls == 0 ? 0.0
                            : static_cast<double>(tp) /
                                  static_cast<double>(predicted_cls);
}

double ConfusionMatrix::Recall(int cls) const {
  size_t tp = count(cls, cls);
  size_t actual_cls = 0;
  for (int p = 0; p < num_classes_; ++p) actual_cls += count(cls, p);
  return actual_cls == 0
             ? 0.0
             : static_cast<double>(tp) / static_cast<double>(actual_cls);
}

double ConfusionMatrix::F1(int cls) const {
  const double p = Precision(cls);
  const double r = Recall(cls);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) sum += F1(c);
  return sum / static_cast<double>(num_classes_);
}

double ConfusionMatrix::MicroF1() const {
  // Single-label multi-class: micro precision == micro recall == accuracy.
  return Accuracy();
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << util::PadRight("t\\p", 6);
  for (int p = 0; p < num_classes_; ++p) {
    os << util::PadLeft(std::to_string(p), 7);
  }
  os << "\n";
  for (int t = 0; t < num_classes_; ++t) {
    os << util::PadRight(std::to_string(t), 6);
    for (int p = 0; p < num_classes_; ++p) {
      os << util::PadLeft(std::to_string(count(t, p)), 7);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace adamgnn::train
