#include "train/clustering.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace adamgnn::train {

namespace {

double SquaredDistance(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return s;
}

}  // namespace

util::Result<KMeansResult> KMeans(const tensor::Matrix& points, int k,
                                  util::Rng* rng, int max_iterations) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  if (k < 1 || static_cast<size_t>(k) > n) {
    return util::Status::InvalidArgument("k must be in [1, n]");
  }
  if (max_iterations < 1) {
    return util::Status::InvalidArgument("max_iterations must be >= 1");
  }

  // k-means++ seeding.
  tensor::Matrix centroids(static_cast<size_t>(k), dim);
  std::vector<double> min_dist(n, 0.0);
  {
    const size_t first = rng->NextUint64(n);
    std::copy(points.row(first), points.row(first) + dim, centroids.row(0));
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = SquaredDistance(points.row(i), centroids.row(0), dim);
    }
    for (int c = 1; c < k; ++c) {
      double total = 0.0;
      for (double d : min_dist) total += d;
      size_t chosen = 0;
      if (total > 0.0) {
        double x = rng->NextDouble() * total;
        for (size_t i = 0; i < n; ++i) {
          x -= min_dist[i];
          if (x <= 0.0) {
            chosen = i;
            break;
          }
        }
      } else {
        chosen = rng->NextUint64(n);  // all points identical
      }
      std::copy(points.row(chosen), points.row(chosen) + dim,
                centroids.row(static_cast<size_t>(c)));
      for (size_t i = 0; i < n; ++i) {
        min_dist[i] = std::min(
            min_dist[i],
            SquaredDistance(points.row(i),
                            centroids.row(static_cast<size_t>(c)), dim));
      }
    }
  }

  KMeansResult result;
  result.assignments.assign(n, -1);
  result.centroids = std::move(centroids);

  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // Assignment step.
    bool changed = false;
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = SquaredDistance(points.row(i),
                                      result.centroids.row(0), dim);
      for (int c = 1; c < k; ++c) {
        const double d = SquaredDistance(
            points.row(i), result.centroids.row(static_cast<size_t>(c)),
            dim);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      result.inertia += best_d;
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    if (!changed) break;
    // Update step; empty clusters keep their previous centroid.
    tensor::Matrix sums(static_cast<size_t>(k), dim);
    std::vector<size_t> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      const auto c = static_cast<size_t>(result.assignments[i]);
      ++counts[c];
      double* s = sums.row(c);
      const double* p = points.row(i);
      for (size_t j = 0; j < dim; ++j) s[j] += p[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      const double inv = 1.0 / static_cast<double>(
                                   counts[static_cast<size_t>(c)]);
      double* ct = result.centroids.row(static_cast<size_t>(c));
      const double* s = sums.row(static_cast<size_t>(c));
      for (size_t j = 0; j < dim; ++j) ct[j] = s[j] * inv;
    }
  }
  return result;
}

double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b) {
  ADAMGNN_CHECK_EQ(a.size(), b.size());
  ADAMGNN_CHECK(!a.empty());
  const double n = static_cast<double>(a.size());

  std::map<int, double> pa, pb;
  std::map<std::pair<int, int>, double> pab;
  for (size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    pab[{a[i], b[i]}] += 1.0;
  }
  double mi = 0.0;
  for (const auto& [key, count] : pab) {
    const double pxy = count / n;
    const double px = pa[key.first] / n;
    const double py = pb[key.second] / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  auto entropy = [n](const std::map<int, double>& p) {
    double h = 0.0;
    for (const auto& [label, count] : p) {
      const double q = count / n;
      h -= q * std::log(q);
    }
    return h;
  };
  const double ha = entropy(pa);
  const double hb = entropy(pb);
  if (ha == 0.0 && hb == 0.0) return 1.0;  // both constant labelings agree
  const double denom = 0.5 * (ha + hb);
  if (denom == 0.0) return 0.0;
  return std::max(0.0, mi / denom);
}

double ClusterPurity(const std::vector<int>& clusters,
                     const std::vector<int>& classes) {
  ADAMGNN_CHECK_EQ(clusters.size(), classes.size());
  ADAMGNN_CHECK(!clusters.empty());
  std::map<int, std::map<int, size_t>> histogram;
  for (size_t i = 0; i < clusters.size(); ++i) {
    ++histogram[clusters[i]][classes[i]];
  }
  size_t majority_total = 0;
  for (const auto& [cluster, counts] : histogram) {
    size_t best = 0;
    for (const auto& [cls, count] : counts) best = std::max(best, count);
    majority_total += best;
  }
  return static_cast<double>(majority_total) /
         static_cast<double>(clusters.size());
}

}  // namespace adamgnn::train
