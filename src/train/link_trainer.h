// Link-prediction training loop: embeddings are trained with BCE over
// training positives and sampled negatives (for AdamGNN this *is* L_R, so
// L = L_R + γ L_KL as in the paper), evaluated with ROC-AUC.

#ifndef ADAMGNN_TRAIN_LINK_TRAINER_H_
#define ADAMGNN_TRAIN_LINK_TRAINER_H_

#include <vector>

#include "data/splits.h"
#include "nn/serialize.h"
#include "train/interfaces.h"
#include "train/node_trainer.h"
#include "util/status.h"

namespace adamgnn::train {

struct LinkTaskResult {
  double val_auc = 0;
  /// Test AUC at the best-validation epoch.
  double test_auc = 0;
  int best_epoch = 0;
  int epochs_run = 0;
  double avg_epoch_seconds = 0;
  /// Absolute epoch the run resumed from, or -1 on a cold start.
  int resumed_from_epoch = -1;
  /// Divergence rollbacks performed during (or before, if resumed) the run.
  std::vector<nn::RecoveryEvent> recovery_events;
};

/// Trains on split.train_graph (val/test edges held out of message passing).
util::Result<LinkTaskResult> TrainLinkPredictor(EmbeddingModel* model,
                                                const data::LinkSplit& split,
                                                const TrainConfig& config);

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_LINK_TRAINER_H_
