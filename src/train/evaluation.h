// Classification evaluation beyond plain accuracy: confusion matrices and
// per-class precision / recall / F1 with macro and micro averages.

#ifndef ADAMGNN_TRAIN_EVALUATION_H_
#define ADAMGNN_TRAIN_EVALUATION_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace adamgnn::train {

/// Row = true class, column = predicted class.
class ConfusionMatrix {
 public:
  /// Builds from aligned prediction/truth vectors; labels must lie in
  /// [0, num_classes).
  static util::Result<ConfusionMatrix> FromPredictions(
      const std::vector<int>& predicted, const std::vector<int>& truth,
      int num_classes);

  int num_classes() const { return num_classes_; }
  size_t count(int truth, int predicted) const;
  size_t total() const { return total_; }

  double Accuracy() const;
  /// Precision/recall/F1 of one class (0 when the denominator is 0).
  double Precision(int cls) const;
  double Recall(int cls) const;
  double F1(int cls) const;
  /// Unweighted mean of per-class F1.
  double MacroF1() const;
  /// Global F1 over pooled counts; equals accuracy for single-label tasks.
  double MicroF1() const;

  /// Aligned text table for logs.
  std::string ToString() const;

 private:
  ConfusionMatrix(int num_classes)
      : num_classes_(num_classes),
        counts_(static_cast<size_t>(num_classes) *
                static_cast<size_t>(num_classes)) {}

  int num_classes_;
  size_t total_ = 0;
  std::vector<size_t> counts_;
};

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_EVALUATION_H_
