#include "train/resilience.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace adamgnn::train {

namespace {

obs::Counter& CheckpointSaves() {
  static obs::Counter* c = new obs::Counter("resilience.checkpoints");
  return *c;
}
obs::Counter& Resumes() {
  static obs::Counter* c = new obs::Counter("resilience.resumes");
  return *c;
}
obs::Counter& Recoveries() {
  static obs::Counter* c = new obs::Counter("resilience.recoveries");
  return *c;
}

}  // namespace

TrainingResilience::TrainingResilience(const TrainConfig& config,
                                       nn::Adam* optimizer, util::Rng* rng)
    : config_(config),
      optimizer_(optimizer),
      rng_(rng),
      last_good_params_(optimizer->params()),
      last_good_moments_(optimizer->GetState()) {
  ADAMGNN_CHECK(optimizer != nullptr);
  ADAMGNN_CHECK(rng != nullptr);
}

util::Result<int> TrainingResilience::Initialize() {
  if (!config_.resume || config_.checkpoint_path.empty()) return 0;
  std::vector<autograd::Variable> params = optimizer_->params();
  util::Result<nn::TrainingState> loaded =
      nn::LoadTrainingCheckpoint(config_.checkpoint_path, &params, optimizer_);
  if (!loaded.ok()) {
    if (loaded.status().code() == util::StatusCode::kNotFound) {
      return 0;  // nothing saved yet: cold start
    }
    return loaded.status();
  }
  state_ = std::move(loaded).ValueOrDie();
  if (!rng_->RestoreState(state_.rng_state)) {
    return util::Status::InvalidArgument(
        "checkpoint RNG state is malformed: " + config_.checkpoint_path);
  }
  if (state_.learning_rate > 0.0) {
    optimizer_->set_learning_rate(state_.learning_rate);
  }
  resumed_from_ = static_cast<int>(state_.next_epoch);
  Resumes().Add();
  CaptureLastGood();
  return resumed_from_;
}

void TrainingResilience::CaptureLastGood() {
  last_good_params_.Capture();
  last_good_moments_ = optimizer_->GetState();
}

util::Result<bool> TrainingResilience::Recover(int epoch,
                                               nn::RecoveryEvent::Kind kind) {
  if (state_.lr_retries >= config_.max_lr_retries) {
    return util::Status::Internal(
        "training diverged (" + std::string(nn::RecoveryKindToString(kind)) +
        " at epoch " + std::to_string(epoch) + ") after " +
        std::to_string(state_.lr_retries) +
        " rollbacks; giving up (max_lr_retries)");
  }
  const double lr_before = optimizer_->learning_rate();
  const double lr_after = lr_before * config_.lr_backoff;
  last_good_params_.Restore();
  optimizer_->SetState(last_good_moments_).CheckOK();
  optimizer_->set_learning_rate(lr_after);
  ++state_.lr_retries;

  nn::RecoveryEvent event;
  event.epoch = epoch;
  event.kind = kind;
  event.lr_before = lr_before;
  event.lr_after = lr_after;
  state_.recovery_events.push_back(event);
  Recoveries().Add();
  if (config_.verbose) {
    ADAMGNN_LOG(Warning) << "epoch " << epoch << ": "
                         << nn::RecoveryKindToString(kind)
                         << ", rolled back to last finite epoch, lr "
                         << lr_before << " -> " << lr_after;
  }
  return true;
}

util::Result<bool> TrainingResilience::GuardLoss(int epoch,
                                                 double* loss_value) {
  if (util::FaultInjector::Instance().ShouldPoisonLoss(epoch)) {
    *loss_value = std::nan("");
  }
  if (!config_.divergence_guard || std::isfinite(*loss_value)) return false;
  return Recover(epoch, nn::RecoveryEvent::Kind::kNonFiniteLoss);
}

util::Result<bool> TrainingResilience::GuardGradNorm(int epoch,
                                                     double grad_norm) {
  if (!config_.divergence_guard || std::isfinite(grad_norm)) return false;
  return Recover(epoch, nn::RecoveryEvent::Kind::kNonFiniteGrad);
}

util::Status TrainingResilience::SaveCheckpoint() {
  obs::TraceSpan span("checkpoint.save");
  state_.learning_rate = optimizer_->learning_rate();
  state_.rng_state = rng_->SaveState();
  util::Status st = nn::SaveTrainingCheckpoint(optimizer_->params(),
                                               *optimizer_, state_,
                                               config_.checkpoint_path);
  if (st.ok()) CheckpointSaves().Add();
  return st;
}

util::Status TrainingResilience::CompleteEpoch(int epoch) {
  CaptureLastGood();
  state_.next_epoch = epoch + 1;
  if (config_.checkpoint_path.empty() || config_.checkpoint_every <= 0 ||
      (epoch + 1) % config_.checkpoint_every != 0) {
    return util::Status::OK();
  }
  return SaveCheckpoint();
}

util::Status TrainingResilience::Finalize(int epochs_run) {
  if (config_.checkpoint_path.empty()) return util::Status::OK();
  state_.next_epoch = epochs_run;
  return SaveCheckpoint();
}

}  // namespace adamgnn::train
