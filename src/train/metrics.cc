#include "train/metrics.h"

#include <algorithm>
#include <numeric>

#include "autograd/loss_ops.h"
#include "util/logging.h"

namespace adamgnn::train {

double Accuracy(const tensor::Matrix& logits, const std::vector<int>& labels,
                const std::vector<size_t>& rows) {
  ADAMGNN_CHECK(!rows.empty());
  ADAMGNN_CHECK_EQ(labels.size(), logits.rows());
  size_t correct = 0;
  for (size_t r : rows) {
    const double* x = logits.row(r);
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (x[c] > x[best]) best = c;
    }
    if (static_cast<int>(best) == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

double AccuracyFromPredictions(const std::vector<int>& predicted,
                               const std::vector<int>& truth) {
  ADAMGNN_CHECK_EQ(predicted.size(), truth.size());
  ADAMGNN_CHECK(!predicted.empty());
  size_t correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  ADAMGNN_CHECK_EQ(scores.size(), labels.size());
  size_t num_pos = 0, num_neg = 0;
  for (int l : labels) {
    if (l == 1) {
      ++num_pos;
    } else {
      ++num_neg;
    }
  }
  ADAMGNN_CHECK_GT(num_pos, 0u);
  ADAMGNN_CHECK_GT(num_neg, 0u);

  // Midrank-based Mann–Whitney U.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(scores.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;  // 1-based
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) pos_rank_sum += rank[k];
  }
  const double u = pos_rank_sum - static_cast<double>(num_pos) *
                                      (static_cast<double>(num_pos) + 1.0) /
                                      2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace adamgnn::train
