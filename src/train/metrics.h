// Evaluation metrics used across the paper's tables: classification accuracy
// and ROC-AUC (link prediction).

#ifndef ADAMGNN_TRAIN_METRICS_H_
#define ADAMGNN_TRAIN_METRICS_H_

#include <vector>

#include "tensor/matrix.h"

namespace adamgnn::train {

/// Fraction of rows in `rows` whose argmax(logits) equals labels[row].
double Accuracy(const tensor::Matrix& logits, const std::vector<int>& labels,
                const std::vector<size_t>& rows);

/// Accuracy over predicted vs. true label vectors of equal length.
double AccuracyFromPredictions(const std::vector<int>& predicted,
                               const std::vector<int>& truth);

/// Area under the ROC curve for binary labels (1 = positive). Ties receive
/// the midrank, the standard Mann–Whitney estimator. Requires at least one
/// positive and one negative.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_METRICS_H_
