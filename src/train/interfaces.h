// Task-facing model interfaces. Every architecture in this library (the flat
// GNN baselines, the pooling baselines, and AdamGNN) adapts to one or more of
// these, so the trainers and benches can treat them uniformly.

#ifndef ADAMGNN_TRAIN_INTERFACES_H_
#define ADAMGNN_TRAIN_INTERFACES_H_

#include <vector>

#include "autograd/variable.h"
#include "graph/batch.h"
#include "graph/graph.h"
#include "util/random.h"

namespace adamgnn::train {

/// A model that scores nodes of a single graph (node classification).
class NodeModel {
 public:
  virtual ~NodeModel() = default;

  struct Out {
    autograd::Variable logits;    // (n x num_classes)
    autograd::Variable aux_loss;  // optional extra loss term (1x1)
  };
  virtual Out Forward(const graph::Graph& g, bool training,
                      util::Rng* rng) = 0;
  virtual std::vector<autograd::Variable> Parameters() const = 0;
};

/// A model that embeds nodes of a single graph (link prediction scores are
/// dot products of embeddings).
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  struct Out {
    autograd::Variable embeddings;  // (n x d)
    autograd::Variable aux_loss;    // optional (1x1)
  };
  virtual Out Forward(const graph::Graph& g, bool training,
                      util::Rng* rng) = 0;
  virtual std::vector<autograd::Variable> Parameters() const = 0;
};

/// A model that classifies whole graphs from a batched block-diagonal graph.
class GraphModel {
 public:
  virtual ~GraphModel() = default;

  struct Out {
    autograd::Variable logits;    // (num_graphs x num_classes)
    autograd::Variable aux_loss;  // optional (1x1)
  };
  virtual Out Forward(const graph::GraphBatch& batch, bool training,
                      util::Rng* rng) = 0;
  virtual std::vector<autograd::Variable> Parameters() const = 0;
};

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_INTERFACES_H_
