// Task-facing model interfaces and the shared training configuration. Every
// architecture in this library (the flat GNN baselines, the pooling
// baselines, and AdamGNN) adapts to one or more of these, so the trainers
// and benches can treat them uniformly.

#ifndef ADAMGNN_TRAIN_INTERFACES_H_
#define ADAMGNN_TRAIN_INTERFACES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "graph/batch.h"
#include "graph/graph.h"
#include "util/random.h"

namespace adamgnn::train {

/// Configuration shared by all three task trainers (node, link, graph).
struct TrainConfig {
  int max_epochs = 200;
  double learning_rate = 0.01;
  double weight_decay = 5e-4;
  /// Stop after this many epochs without validation improvement.
  int patience = 30;
  double clip_norm = 5.0;
  uint64_t seed = 1;
  bool verbose = false;

  // --- crash safety ----------------------------------------------------
  /// Resumable checkpoint file (parameters + Adam moments + RNG + epoch
  /// bookkeeping, crash-safe atomic writes). Empty disables checkpointing.
  std::string checkpoint_path;
  /// Additionally save every N completed epochs (0 = only at the end of
  /// the run). Only meaningful with a checkpoint_path.
  int checkpoint_every = 0;
  /// Resume from checkpoint_path when the file exists; a missing file is a
  /// normal cold start. Resuming reproduces the uninterrupted run bitwise
  /// at the same seed and thread count.
  bool resume = false;

  // --- divergence recovery ---------------------------------------------
  /// When the loss or gradient norm goes non-finite, roll parameters and
  /// optimizer moments back to the last finite epoch, scale the learning
  /// rate by lr_backoff, and continue (the incident is recorded in the
  /// task result). After max_lr_retries rollbacks the run fails instead.
  bool divergence_guard = true;
  double lr_backoff = 0.5;
  int max_lr_retries = 3;
};

/// A model that scores nodes of a single graph (node classification).
class NodeModel {
 public:
  virtual ~NodeModel() = default;

  struct Out {
    autograd::Variable logits;    // (n x num_classes)
    autograd::Variable aux_loss;  // optional extra loss term (1x1)
  };
  virtual Out Forward(const graph::Graph& g, bool training,
                      util::Rng* rng) = 0;

  /// Eval-mode forward, used for every validation/test pass. The default
  /// wraps Forward(training=false) in a NoGradGuard so no tape is recorded;
  /// AdamGNN overrides it with a tape-free core::InferenceSession.
  /// Evaluation only consumes logit values, so overrides may leave aux_loss
  /// undefined and ignore `rng`.
  virtual Out Evaluate(const graph::Graph& g, util::Rng* rng) {
    autograd::NoGradGuard no_grad;
    return Forward(g, /*training=*/false, rng);
  }

  virtual std::vector<autograd::Variable> Parameters() const = 0;
};

/// A model that embeds nodes of a single graph (link prediction scores are
/// dot products of embeddings).
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  struct Out {
    autograd::Variable embeddings;  // (n x d)
    autograd::Variable aux_loss;    // optional (1x1)
  };
  virtual Out Forward(const graph::Graph& g, bool training,
                      util::Rng* rng) = 0;

  /// Eval-mode forward; see NodeModel::Evaluate for the contract.
  virtual Out Evaluate(const graph::Graph& g, util::Rng* rng) {
    autograd::NoGradGuard no_grad;
    return Forward(g, /*training=*/false, rng);
  }

  virtual std::vector<autograd::Variable> Parameters() const = 0;
};

/// A model that classifies whole graphs from a batched block-diagonal graph.
class GraphModel {
 public:
  virtual ~GraphModel() = default;

  struct Out {
    autograd::Variable logits;    // (num_graphs x num_classes)
    autograd::Variable aux_loss;  // optional (1x1)
  };
  virtual Out Forward(const graph::GraphBatch& batch, bool training,
                      util::Rng* rng) = 0;

  /// Eval-mode forward; see NodeModel::Evaluate for the contract.
  virtual Out Evaluate(const graph::GraphBatch& batch, util::Rng* rng) {
    autograd::NoGradGuard no_grad;
    return Forward(batch, /*training=*/false, rng);
  }

  virtual std::vector<autograd::Variable> Parameters() const = 0;
};

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_INTERFACES_H_
