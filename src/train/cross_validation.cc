#include "train/cross_validation.h"

#include <cmath>
#include <numeric>

namespace adamgnn::train {

util::Result<std::vector<Fold>> KFold(size_t n, int k, util::Rng* rng) {
  if (k < 2 || static_cast<size_t>(k) > n) {
    return util::Status::InvalidArgument("k must be in [2, n]");
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  std::vector<Fold> folds(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    folds[i % static_cast<size_t>(k)].test.push_back(order[i]);
  }
  for (int f = 0; f < k; ++f) {
    for (int other = 0; other < k; ++other) {
      if (other == f) continue;
      const auto& src = folds[static_cast<size_t>(other)].test;
      auto& train = folds[static_cast<size_t>(f)].train;
      train.insert(train.end(), src.begin(), src.end());
    }
  }
  return folds;
}

RunStatistics RepeatRuns(int num_runs,
                         const std::function<double(uint64_t)>& experiment) {
  RunStatistics stats;
  for (int run = 1; run <= num_runs; ++run) {
    stats.values.push_back(experiment(static_cast<uint64_t>(run)));
  }
  if (stats.values.empty()) return stats;
  double sum = 0.0;
  for (double v : stats.values) sum += v;
  stats.mean = sum / static_cast<double>(stats.values.size());
  if (stats.values.size() > 1) {
    double sq = 0.0;
    for (double v : stats.values) {
      sq += (v - stats.mean) * (v - stats.mean);
    }
    stats.stddev =
        std::sqrt(sq / static_cast<double>(stats.values.size() - 1));
  }
  return stats;
}

}  // namespace adamgnn::train
