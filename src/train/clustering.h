// Node clustering — the third node-level task the paper's introduction
// motivates (Zhang et al. 2019; Bo et al. 2020). Embeddings are clustered
// with k-means++ and judged against ground-truth classes with normalized
// mutual information (NMI) and purity.

#ifndef ADAMGNN_TRAIN_CLUSTERING_H_
#define ADAMGNN_TRAIN_CLUSTERING_H_

#include <vector>

#include "tensor/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace adamgnn::train {

struct KMeansResult {
  /// Cluster id per input row.
  std::vector<int> assignments;
  /// (k x dim) centroids.
  tensor::Matrix centroids;
  /// Final within-cluster sum of squared distances.
  double inertia = 0.0;
  int iterations_run = 0;
};

/// Lloyd's algorithm with k-means++ seeding. `points` is (n x dim), k >= 1,
/// k <= n. Deterministic given the RNG state.
util::Result<KMeansResult> KMeans(const tensor::Matrix& points, int k,
                                  util::Rng* rng, int max_iterations = 100);

/// Normalized mutual information between two labelings (arithmetic-mean
/// normalization), in [0, 1]. Sizes must match and be non-empty.
double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b);

/// Fraction of points whose cluster's majority class matches their class.
double ClusterPurity(const std::vector<int>& clusters,
                     const std::vector<int>& classes);

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_CLUSTERING_H_
