// Repeated-evaluation utilities: k-fold index generation and mean/stddev
// aggregation. The paper reports "average performance of 10 experiments
// with random seeds" — RunStatistics packages that protocol.

#ifndef ADAMGNN_TRAIN_CROSS_VALIDATION_H_
#define ADAMGNN_TRAIN_CROSS_VALIDATION_H_

#include <functional>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace adamgnn::train {

/// One fold: indices held out for testing; the remainder trains.
struct Fold {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Shuffled k-fold partition of n items. Requires 2 <= k <= n. Fold sizes
/// differ by at most one; every item appears in exactly one test set.
util::Result<std::vector<Fold>> KFold(size_t n, int k, util::Rng* rng);

/// Mean and sample standard deviation of repeated runs.
struct RunStatistics {
  double mean = 0.0;
  double stddev = 0.0;
  std::vector<double> values;
};

/// Runs `experiment(seed)` for seeds 1..num_runs and aggregates.
RunStatistics RepeatRuns(int num_runs,
                         const std::function<double(uint64_t)>& experiment);

}  // namespace adamgnn::train

#endif  // ADAMGNN_TRAIN_CROSS_VALIDATION_H_
