#include "train/graph_trainer.h"

#include <algorithm>

#include "autograd/loss_ops.h"
#include "autograd/ops.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "tensor/workspace.h"
#include "train/metrics.h"
#include "train/resilience.h"
#include "train/telemetry.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace adamgnn::train {

namespace {

// Evaluation accuracy over the graphs listed by `indices`.
util::Result<double> EvalAccuracy(GraphModel* model,
                                  const data::GraphDataset& dataset,
                                  const std::vector<size_t>& indices,
                                  size_t batch_size, util::Rng* rng) {
  size_t correct = 0;
  for (size_t start = 0; start < indices.size(); start += batch_size) {
    std::vector<const graph::Graph*> members;
    for (size_t i = start; i < std::min(start + batch_size, indices.size());
         ++i) {
      members.push_back(&dataset.graphs[indices[i]]);
    }
    ADAMGNN_ASSIGN_OR_RETURN(graph::GraphBatch batch,
                             graph::MakeBatch(members));
    GraphModel::Out out = model->Evaluate(batch, rng);
    std::vector<int> pred = autograd::ArgmaxRows(out.logits.value());
    for (size_t i = 0; i < batch.num_graphs(); ++i) {
      if (pred[i] == batch.graph_labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(indices.size());
}

}  // namespace

util::Result<GraphTaskResult> TrainGraphClassifier(
    GraphModel* model, const data::GraphDataset& dataset,
    const data::IndexSplit& split, const TrainConfig& config,
    size_t batch_size) {
  if (model == nullptr) {
    return util::Status::InvalidArgument("null model");
  }
  if (split.train.empty() || split.val.empty() || split.test.empty()) {
    return util::Status::InvalidArgument("empty split");
  }
  if (batch_size == 0) {
    return util::Status::InvalidArgument("batch_size must be positive");
  }

  // Epoch-storage arena (see node_trainer.cc); declared before the optimizer
  // so the optimizer's buffers drain into it on scope exit.
  tensor::Workspace workspace;
  tensor::Workspace::Bind workspace_bind(&workspace);

  util::Rng rng(config.seed);
  nn::Adam optimizer(model->Parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);
  TrainingResilience resilience(config, &optimizer, &rng);
  ADAMGNN_ASSIGN_OR_RETURN(int start_epoch, resilience.Initialize());
  nn::TrainingState& st = resilience.state();

  GraphTaskResult result;
  result.epochs_run = start_epoch;

  for (int epoch = start_epoch; epoch < config.max_epochs; ++epoch) {
    util::Stopwatch watch;
    obs::TraceSpan epoch_span("train.epoch");
    epoch_span.Note("epoch", static_cast<double>(epoch));
    // Phase seconds accumulate across the epoch's mini-batches.
    EpochPhases phases;
    util::Stopwatch phase_watch;
    double last_loss = 0.0;
    double last_grad_norm = 0.0;
    // The epoch's batch order is a pure function of the split and the RNG
    // state at the epoch boundary (not of the previous epoch's order), so
    // a resumed run shuffles identically to an uninterrupted one.
    std::vector<size_t> train_order = split.train;
    rng.Shuffle(&train_order);
    // A non-finite loss or gradient in any mini-batch abandons the whole
    // epoch: parameters and moments roll back to the last finite epoch
    // boundary, undoing the batches that already stepped.
    bool recovered = false;
    for (size_t start = 0; start < train_order.size(); start += batch_size) {
      std::vector<const graph::Graph*> members;
      for (size_t i = start;
           i < std::min(start + batch_size, train_order.size()); ++i) {
        members.push_back(&dataset.graphs[train_order[i]]);
      }
      ADAMGNN_ASSIGN_OR_RETURN(graph::GraphBatch batch,
                               graph::MakeBatch(members));
      phase_watch.Restart();
      GraphModel::Out out = model->Forward(batch, /*training=*/true, &rng);
      std::vector<size_t> all_rows(batch.num_graphs());
      for (size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
      autograd::Variable loss = autograd::SoftmaxCrossEntropy(
          out.logits, batch.graph_labels, all_rows);
      if (out.aux_loss.defined()) loss = autograd::Add(loss, out.aux_loss);
      phases.forward_secs += phase_watch.ElapsedSeconds();

      double loss_value = loss.value()(0, 0);
      ADAMGNN_ASSIGN_OR_RETURN(recovered,
                               resilience.GuardLoss(epoch, &loss_value));
      last_loss = loss_value;
      if (recovered) break;
      phase_watch.Restart();
      autograd::Backward(loss);
      const double grad_norm =
          nn::ClipGradNorm(optimizer.params(), config.clip_norm);
      phases.backward_secs += phase_watch.ElapsedSeconds();
      last_grad_norm = grad_norm;
      ADAMGNN_ASSIGN_OR_RETURN(recovered,
                               resilience.GuardGradNorm(epoch, grad_norm));
      if (recovered) break;
      phase_watch.Restart();
      optimizer.Step();
      phases.optimizer_secs += phase_watch.ElapsedSeconds();
    }
    const double epoch_secs = watch.ElapsedSeconds();
    st.total_epoch_seconds += epoch_secs;
    result.epochs_run = epoch + 1;
    if (recovered) {
      epoch_span.Note("recovered", 1.0);
      RecordEpochMetrics(epoch_secs, last_loss, last_grad_norm, phases,
                         &workspace);
      continue;
    }

    phase_watch.Restart();
    ADAMGNN_ASSIGN_OR_RETURN(
        double val_acc,
        EvalAccuracy(model, dataset, split.val, batch_size, &rng));
    if (config.verbose) {
      ADAMGNN_LOG(Info) << "epoch " << epoch << " val " << val_acc;
    }
    if (val_acc > st.best_val) {
      st.best_val = val_acc;
      st.best_epoch = epoch;
      st.best_val_metric = val_acc;
      ADAMGNN_ASSIGN_OR_RETURN(
          st.best_train_metric,
          EvalAccuracy(model, dataset, split.train, batch_size, &rng));
      ADAMGNN_ASSIGN_OR_RETURN(
          st.best_test_metric,
          EvalAccuracy(model, dataset, split.test, batch_size, &rng));
      st.stale_epochs = 0;
    } else {
      ++st.stale_epochs;
    }
    phases.eval_secs = phase_watch.ElapsedSeconds();
    epoch_span.Note("loss", last_loss);
    epoch_span.Note("grad_norm", last_grad_norm);
    epoch_span.Note("val_metric", val_acc);
    RecordEpochMetrics(epoch_secs, last_loss, last_grad_norm, phases,
                       &workspace);
    ADAMGNN_RETURN_NOT_OK(resilience.CompleteEpoch(epoch));
    if (st.stale_epochs >= config.patience) break;
  }
  ADAMGNN_RETURN_NOT_OK(resilience.Finalize(result.epochs_run));

  result.best_epoch = static_cast<int>(st.best_epoch);
  result.val_accuracy = st.best_val_metric;
  result.train_accuracy = st.best_train_metric;
  result.test_accuracy = st.best_test_metric;
  result.resumed_from_epoch = resilience.resumed_from_epoch();
  result.recovery_events = resilience.recovery_events();
  result.avg_epoch_seconds =
      result.epochs_run > 0
          ? st.total_epoch_seconds / static_cast<double>(result.epochs_run)
          : 0.0;
  return result;
}

}  // namespace adamgnn::train
