#include "train/graph_trainer.h"

#include <algorithm>

#include "autograd/loss_ops.h"
#include "autograd/ops.h"
#include "nn/optimizer.h"
#include "train/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace adamgnn::train {

namespace {

// Evaluation accuracy over the graphs listed by `indices`.
util::Result<double> EvalAccuracy(GraphModel* model,
                                  const data::GraphDataset& dataset,
                                  const std::vector<size_t>& indices,
                                  size_t batch_size, util::Rng* rng) {
  size_t correct = 0;
  for (size_t start = 0; start < indices.size(); start += batch_size) {
    std::vector<const graph::Graph*> members;
    for (size_t i = start; i < std::min(start + batch_size, indices.size());
         ++i) {
      members.push_back(&dataset.graphs[indices[i]]);
    }
    ADAMGNN_ASSIGN_OR_RETURN(graph::GraphBatch batch,
                             graph::MakeBatch(members));
    GraphModel::Out out = model->Forward(batch, /*training=*/false, rng);
    std::vector<int> pred = autograd::ArgmaxRows(out.logits.value());
    for (size_t i = 0; i < batch.num_graphs(); ++i) {
      if (pred[i] == batch.graph_labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(indices.size());
}

}  // namespace

util::Result<GraphTaskResult> TrainGraphClassifier(
    GraphModel* model, const data::GraphDataset& dataset,
    const data::IndexSplit& split, const TrainConfig& config,
    size_t batch_size) {
  if (model == nullptr) {
    return util::Status::InvalidArgument("null model");
  }
  if (split.train.empty() || split.val.empty() || split.test.empty()) {
    return util::Status::InvalidArgument("empty split");
  }
  if (batch_size == 0) {
    return util::Status::InvalidArgument("batch_size must be positive");
  }

  util::Rng rng(config.seed);
  nn::Adam optimizer(model->Parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);

  GraphTaskResult result;
  double best_val = -1.0;
  int stale = 0;
  double total_epoch_time = 0.0;
  std::vector<size_t> train_order = split.train;

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    util::Stopwatch watch;
    rng.Shuffle(&train_order);
    for (size_t start = 0; start < train_order.size(); start += batch_size) {
      std::vector<const graph::Graph*> members;
      for (size_t i = start;
           i < std::min(start + batch_size, train_order.size()); ++i) {
        members.push_back(&dataset.graphs[train_order[i]]);
      }
      ADAMGNN_ASSIGN_OR_RETURN(graph::GraphBatch batch,
                               graph::MakeBatch(members));
      GraphModel::Out out = model->Forward(batch, /*training=*/true, &rng);
      std::vector<size_t> all_rows(batch.num_graphs());
      for (size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
      autograd::Variable loss = autograd::SoftmaxCrossEntropy(
          out.logits, batch.graph_labels, all_rows);
      if (out.aux_loss.defined()) loss = autograd::Add(loss, out.aux_loss);
      autograd::Backward(loss);
      nn::ClipGradNorm(optimizer.params(), config.clip_norm);
      optimizer.Step();
    }
    total_epoch_time += watch.ElapsedSeconds();
    result.epochs_run = epoch + 1;

    ADAMGNN_ASSIGN_OR_RETURN(
        double val_acc,
        EvalAccuracy(model, dataset, split.val, batch_size, &rng));
    if (config.verbose) {
      ADAMGNN_LOG(Info) << "epoch " << epoch << " val " << val_acc;
    }
    if (val_acc > best_val) {
      best_val = val_acc;
      result.best_epoch = epoch;
      result.val_accuracy = val_acc;
      ADAMGNN_ASSIGN_OR_RETURN(
          result.train_accuracy,
          EvalAccuracy(model, dataset, split.train, batch_size, &rng));
      ADAMGNN_ASSIGN_OR_RETURN(
          result.test_accuracy,
          EvalAccuracy(model, dataset, split.test, batch_size, &rng));
      stale = 0;
    } else if (++stale >= config.patience) {
      break;
    }
  }
  result.avg_epoch_seconds =
      total_epoch_time / static_cast<double>(result.epochs_run);
  return result;
}

}  // namespace adamgnn::train
