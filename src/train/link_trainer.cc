#include "train/link_trainer.h"

#include <cmath>

#include "autograd/loss_ops.h"
#include "autograd/ops.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "tensor/workspace.h"
#include "train/metrics.h"
#include "train/resilience.h"
#include "train/telemetry.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace adamgnn::train {

namespace {

// AUC of dot-product scores for pos vs. neg pairs under embeddings h.
double PairAuc(const tensor::Matrix& h,
               const std::vector<std::pair<size_t, size_t>>& pos,
               const std::vector<std::pair<size_t, size_t>>& neg) {
  std::vector<double> scores;
  std::vector<int> labels;
  auto score = [&h](const std::pair<size_t, size_t>& p) {
    const double* a = h.row(p.first);
    const double* b = h.row(p.second);
    double s = 0.0;
    for (size_t j = 0; j < h.cols(); ++j) s += a[j] * b[j];
    return s;
  };
  for (const auto& p : pos) {
    scores.push_back(score(p));
    labels.push_back(1);
  }
  for (const auto& p : neg) {
    scores.push_back(score(p));
    labels.push_back(0);
  }
  return RocAuc(scores, labels);
}

}  // namespace

util::Result<LinkTaskResult> TrainLinkPredictor(EmbeddingModel* model,
                                                const data::LinkSplit& split,
                                                const TrainConfig& config) {
  if (model == nullptr) {
    return util::Status::InvalidArgument("null model");
  }
  if (split.train_pos.empty() || split.val_pos.empty() ||
      split.test_pos.empty()) {
    return util::Status::InvalidArgument("empty link split");
  }

  // Epoch-storage arena (see node_trainer.cc); declared before the optimizer
  // so the optimizer's buffers drain into it on scope exit.
  tensor::Workspace workspace;
  tensor::Workspace::Bind workspace_bind(&workspace);

  util::Rng rng(config.seed);
  nn::Adam optimizer(model->Parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);
  TrainingResilience resilience(config, &optimizer, &rng);
  ADAMGNN_ASSIGN_OR_RETURN(int start_epoch, resilience.Initialize());
  nn::TrainingState& st = resilience.state();

  // Training targets: positives then negatives.
  std::vector<std::pair<size_t, size_t>> train_pairs = split.train_pos;
  train_pairs.insert(train_pairs.end(), split.train_neg.begin(),
                     split.train_neg.end());
  std::vector<double> targets(split.train_pos.size(), 1.0);
  targets.resize(train_pairs.size(), 0.0);

  LinkTaskResult result;
  result.epochs_run = start_epoch;

  for (int epoch = start_epoch; epoch < config.max_epochs; ++epoch) {
    util::Stopwatch watch;
    obs::TraceSpan epoch_span("train.epoch");
    epoch_span.Note("epoch", static_cast<double>(epoch));
    EpochPhases phases;
    util::Stopwatch phase_watch;
    EmbeddingModel::Out out =
        model->Forward(split.train_graph, /*training=*/true, &rng);
    autograd::Variable logits =
        autograd::EdgeDotProduct(out.embeddings, train_pairs);
    autograd::Variable loss =
        autograd::BinaryCrossEntropyWithLogits(logits, targets);
    if (out.aux_loss.defined()) loss = autograd::Add(loss, out.aux_loss);
    phases.forward_secs = phase_watch.ElapsedSeconds();

    double loss_value = loss.value()(0, 0);
    double grad_norm = 0.0;
    ADAMGNN_ASSIGN_OR_RETURN(bool recovered,
                             resilience.GuardLoss(epoch, &loss_value));
    if (!recovered) {
      phase_watch.Restart();
      autograd::Backward(loss);
      grad_norm = nn::ClipGradNorm(optimizer.params(), config.clip_norm);
      phases.backward_secs = phase_watch.ElapsedSeconds();
      ADAMGNN_ASSIGN_OR_RETURN(recovered,
                               resilience.GuardGradNorm(epoch, grad_norm));
    }
    if (recovered) {
      const double epoch_secs = watch.ElapsedSeconds();
      st.total_epoch_seconds += epoch_secs;
      result.epochs_run = epoch + 1;
      epoch_span.Note("recovered", 1.0);
      RecordEpochMetrics(epoch_secs, loss_value, grad_norm, phases,
                         &workspace);
      continue;
    }
    phase_watch.Restart();
    optimizer.Step();
    phases.optimizer_secs = phase_watch.ElapsedSeconds();
    const double epoch_secs = watch.ElapsedSeconds();
    st.total_epoch_seconds += epoch_secs;
    result.epochs_run = epoch + 1;

    phase_watch.Restart();
    EmbeddingModel::Out eval = model->Evaluate(split.train_graph, &rng);
    const double val_auc =
        PairAuc(eval.embeddings.value(), split.val_pos, split.val_neg);
    if (config.verbose) {
      ADAMGNN_LOG(Info) << "epoch " << epoch << " loss " << loss_value
                        << " val AUC " << val_auc;
    }
    if (val_auc > st.best_val) {
      st.best_val = val_auc;
      st.best_epoch = epoch;
      st.best_val_metric = val_auc;
      st.best_test_metric =
          PairAuc(eval.embeddings.value(), split.test_pos, split.test_neg);
      st.stale_epochs = 0;
    } else {
      ++st.stale_epochs;
    }
    phases.eval_secs = phase_watch.ElapsedSeconds();
    epoch_span.Note("loss", loss_value);
    epoch_span.Note("grad_norm", grad_norm);
    epoch_span.Note("val_metric", val_auc);
    RecordEpochMetrics(epoch_secs, loss_value, grad_norm, phases, &workspace);
    ADAMGNN_RETURN_NOT_OK(resilience.CompleteEpoch(epoch));
    if (st.stale_epochs >= config.patience) break;
  }
  ADAMGNN_RETURN_NOT_OK(resilience.Finalize(result.epochs_run));

  result.best_epoch = static_cast<int>(st.best_epoch);
  result.val_auc = st.best_val_metric;
  result.test_auc = st.best_test_metric;
  result.resumed_from_epoch = resilience.resumed_from_epoch();
  result.recovery_events = resilience.recovery_events();
  result.avg_epoch_seconds =
      result.epochs_run > 0
          ? st.total_epoch_seconds / static_cast<double>(result.epochs_run)
          : 0.0;
  return result;
}

}  // namespace adamgnn::train
