#include "train/link_trainer.h"

#include <cmath>

#include "autograd/loss_ops.h"
#include "autograd/ops.h"
#include "nn/optimizer.h"
#include "train/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace adamgnn::train {

namespace {

// AUC of dot-product scores for pos vs. neg pairs under embeddings h.
double PairAuc(const tensor::Matrix& h,
               const std::vector<std::pair<size_t, size_t>>& pos,
               const std::vector<std::pair<size_t, size_t>>& neg) {
  std::vector<double> scores;
  std::vector<int> labels;
  auto score = [&h](const std::pair<size_t, size_t>& p) {
    const double* a = h.row(p.first);
    const double* b = h.row(p.second);
    double s = 0.0;
    for (size_t j = 0; j < h.cols(); ++j) s += a[j] * b[j];
    return s;
  };
  for (const auto& p : pos) {
    scores.push_back(score(p));
    labels.push_back(1);
  }
  for (const auto& p : neg) {
    scores.push_back(score(p));
    labels.push_back(0);
  }
  return RocAuc(scores, labels);
}

}  // namespace

util::Result<LinkTaskResult> TrainLinkPredictor(EmbeddingModel* model,
                                                const data::LinkSplit& split,
                                                const TrainConfig& config) {
  if (model == nullptr) {
    return util::Status::InvalidArgument("null model");
  }
  if (split.train_pos.empty() || split.val_pos.empty() ||
      split.test_pos.empty()) {
    return util::Status::InvalidArgument("empty link split");
  }

  util::Rng rng(config.seed);
  nn::Adam optimizer(model->Parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);

  // Training targets: positives then negatives.
  std::vector<std::pair<size_t, size_t>> train_pairs = split.train_pos;
  train_pairs.insert(train_pairs.end(), split.train_neg.begin(),
                     split.train_neg.end());
  std::vector<double> targets(split.train_pos.size(), 1.0);
  targets.resize(train_pairs.size(), 0.0);

  LinkTaskResult result;
  double best_val = -1.0;
  int stale = 0;
  double total_epoch_time = 0.0;

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    util::Stopwatch watch;
    EmbeddingModel::Out out =
        model->Forward(split.train_graph, /*training=*/true, &rng);
    autograd::Variable logits =
        autograd::EdgeDotProduct(out.embeddings, train_pairs);
    autograd::Variable loss =
        autograd::BinaryCrossEntropyWithLogits(logits, targets);
    if (out.aux_loss.defined()) loss = autograd::Add(loss, out.aux_loss);
    autograd::Backward(loss);
    nn::ClipGradNorm(optimizer.params(), config.clip_norm);
    optimizer.Step();
    total_epoch_time += watch.ElapsedSeconds();
    result.epochs_run = epoch + 1;

    EmbeddingModel::Out eval =
        model->Forward(split.train_graph, /*training=*/false, &rng);
    const double val_auc =
        PairAuc(eval.embeddings.value(), split.val_pos, split.val_neg);
    if (config.verbose) {
      ADAMGNN_LOG(Info) << "epoch " << epoch << " loss "
                        << loss.value()(0, 0) << " val AUC " << val_auc;
    }
    if (val_auc > best_val) {
      best_val = val_auc;
      result.best_epoch = epoch;
      result.val_auc = val_auc;
      result.test_auc =
          PairAuc(eval.embeddings.value(), split.test_pos, split.test_neg);
      stale = 0;
    } else if (++stale >= config.patience) {
      break;
    }
  }
  result.avg_epoch_seconds =
      total_epoch_time / static_cast<double>(result.epochs_run);
  return result;
}

}  // namespace adamgnn::train
