// check_metrics — schema validator for the JSONL emitted by --metrics-out.
//
// Usage:
//   check_metrics --file=metrics.jsonl [--mode=any|train|infer|serve|off]
//
// Validates every line against the export schema (see src/obs/export.h):
//   - exactly one leading meta line with version/compiled/enabled
//   - counter lines: non-negative integer value
//   - gauge lines: numeric (or null) value
//   - histogram lines: strictly ascending bounds, counts.size() ==
//     bounds.size() + 1, sum(counts) == count
//   - span lines: name + timing fields + attrs object
// and then applies mode-specific liveness checks: `train` requires the
// trainer's epoch/phase metrics and pool/workspace stats to be present and
// non-trivial, `infer` requires request-latency and plan-cache metrics,
// `serve` requires the serve-loop lifecycle/reload/watchdog families with a
// balanced reload ledger, `off` requires a compiled:false meta line and
// nothing else. Exits 0 on success, 1 with a diagnostic on the first
// violation.
//
// The parser is a deliberately small recursive-descent JSON subset reader
// (objects, arrays, strings, numbers, booleans, null) — enough for our own
// exporter's output; it is not a general JSON library.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  bool IsNumber() const { return kind == Kind::kNumber; }
  const JsonValue* Find(const std::string& key) const {
    auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipSpace();
    if (!ParseValue(out, error)) return false;
    SkipSpace();
    if (pos_ != s_.size()) {
      *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    SkipSpace();
    if (pos_ >= s_.size()) {
      *error = "unexpected end of input";
      return false;
    }
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out, error);
    if (c == '[') return ParseArray(out, error);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str, error);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out, error);
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key, error)) return false;
      SkipSpace();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        *error = "expected ':' after object key";
        return false;
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->members[key] = std::move(value);
      SkipSpace();
      if (pos_ >= s_.size()) {
        *error = "unterminated object";
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      *error = "expected ',' or '}' in object";
      return false;
    }
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= s_.size()) {
        *error = "unterminated array";
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      *error = "expected ',' or ']' in array";
      return false;
    }
  }

  bool ParseString(std::string* out, std::string* error) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      *error = "expected string";
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          *error = "dangling escape in string";
          return false;
        }
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              *error = "truncated \\u escape";
              return false;
            }
            // Exporter only emits \u00xx for control bytes; decode as latin1.
            const std::string hex = s_.substr(pos_, 4);
            out->push_back(
                static_cast<char>(std::strtol(hex.c_str(), nullptr, 16)));
            pos_ += 4;
            break;
          }
          default:
            *error = "unknown escape in string";
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= s_.size()) {
      *error = "unterminated string";
      return false;
    }
    ++pos_;  // closing '"'
    return true;
  }

  bool ParseNumber(JsonValue* out, std::string* error) {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      *error = "expected a JSON value";
      return false;
    }
    const std::string token = s_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      *error = "malformed number \"" + token + "\"";
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema checks.

int Fail(size_t line_no, const std::string& message) {
  std::fprintf(stderr, "check_metrics: line %zu: %s\n", line_no,
               message.c_str());
  return 1;
}

struct ParsedFile {
  bool compiled = false;
  bool enabled = false;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;  // NaN-free; null gauges rejected
  std::map<std::string, double> hist_counts;
  std::vector<std::string> span_names;
  // Spans by name -> attr keys seen (union across events).
  std::map<std::string, std::map<std::string, double>> span_attrs;
};

const JsonValue* RequireMember(const JsonValue& obj, const std::string& key,
                               JsonValue::Kind kind, size_t line_no,
                               std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    *error = "missing \"" + key + "\"";
    return nullptr;
  }
  if (v->kind != kind) {
    *error = "\"" + key + "\" has wrong type";
    return nullptr;
  }
  (void)line_no;
  return v;
}

int CheckHistogram(const JsonValue& obj, size_t line_no, ParsedFile* file) {
  std::string error;
  const JsonValue* name =
      RequireMember(obj, "name", JsonValue::Kind::kString, line_no, &error);
  if (name == nullptr) return Fail(line_no, error);
  const JsonValue* bounds =
      RequireMember(obj, "bounds", JsonValue::Kind::kArray, line_no, &error);
  if (bounds == nullptr) return Fail(line_no, error);
  const JsonValue* counts =
      RequireMember(obj, "counts", JsonValue::Kind::kArray, line_no, &error);
  if (counts == nullptr) return Fail(line_no, error);
  const JsonValue* count =
      RequireMember(obj, "count", JsonValue::Kind::kNumber, line_no, &error);
  if (count == nullptr) return Fail(line_no, error);
  if (obj.Find("sum") == nullptr || obj.Find("min") == nullptr ||
      obj.Find("max") == nullptr) {
    return Fail(line_no, "histogram missing sum/min/max");
  }

  double prev = -1e308;
  for (const JsonValue& b : bounds->items) {
    if (!b.IsNumber()) return Fail(line_no, "non-numeric histogram bound");
    if (b.number <= prev) {
      return Fail(line_no, "histogram bounds are not strictly ascending");
    }
    prev = b.number;
  }
  if (counts->items.size() != bounds->items.size() + 1) {
    return Fail(line_no, "histogram needs counts.size() == bounds.size() + 1 "
                         "(the last bucket is the overflow bucket)");
  }
  double total = 0.0;
  for (const JsonValue& c : counts->items) {
    if (!c.IsNumber() || c.number < 0) {
      return Fail(line_no, "negative or non-numeric bucket count");
    }
    total += c.number;
  }
  if (total != count->number) {
    return Fail(line_no, "sum of bucket counts disagrees with count");
  }
  file->hist_counts[name->str] = count->number;
  return 0;
}

int CheckSpan(const JsonValue& obj, size_t line_no, ParsedFile* file) {
  std::string error;
  const JsonValue* name =
      RequireMember(obj, "name", JsonValue::Kind::kString, line_no, &error);
  if (name == nullptr) return Fail(line_no, error);
  for (const char* key : {"thread", "depth", "start_us", "dur_us"}) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr || !v->IsNumber() || v->number < 0) {
      return Fail(line_no, std::string("span needs non-negative \"") + key +
                               "\"");
    }
  }
  const JsonValue* attrs =
      RequireMember(obj, "attrs", JsonValue::Kind::kObject, line_no, &error);
  if (attrs == nullptr) return Fail(line_no, error);
  file->span_names.push_back(name->str);
  for (const auto& [key, value] : attrs->members) {
    if (!value.IsNumber() && value.kind != JsonValue::Kind::kNull) {
      return Fail(line_no, "span attr \"" + key + "\" is not numeric");
    }
    file->span_attrs[name->str][key] = value.number;
  }
  return 0;
}

int RequireCounter(const ParsedFile& file, const std::string& name,
                   double min_value) {
  auto it = file.counters.find(name);
  if (it == file.counters.end()) {
    std::fprintf(stderr, "check_metrics: missing counter \"%s\"\n",
                 name.c_str());
    return 1;
  }
  if (it->second < min_value) {
    std::fprintf(stderr, "check_metrics: counter \"%s\" = %g, want >= %g\n",
                 name.c_str(), it->second, min_value);
    return 1;
  }
  return 0;
}

int RequireHistogramCount(const ParsedFile& file, const std::string& name,
                          double min_count) {
  auto it = file.hist_counts.find(name);
  if (it == file.hist_counts.end()) {
    std::fprintf(stderr, "check_metrics: missing histogram \"%s\"\n",
                 name.c_str());
    return 1;
  }
  if (it->second < min_count) {
    std::fprintf(stderr,
                 "check_metrics: histogram \"%s\" count = %g, want >= %g\n",
                 name.c_str(), it->second, min_count);
    return 1;
  }
  return 0;
}

int RequireGauge(const ParsedFile& file, const std::string& name) {
  if (file.gauges.count(name) == 0) {
    std::fprintf(stderr, "check_metrics: missing gauge \"%s\"\n",
                 name.c_str());
    return 1;
  }
  return 0;
}

int CheckTrainMode(const ParsedFile& file) {
  int rc = 0;
  rc |= RequireCounter(file, "train.epochs", 1.0);
  rc |= RequireHistogramCount(file, "train.epoch_seconds", 1.0);
  rc |= RequireHistogramCount(file, "train.forward_seconds", 1.0);
  rc |= RequireHistogramCount(file, "train.backward_seconds", 1.0);
  rc |= RequireHistogramCount(file, "train.optimizer_seconds", 1.0);
  rc |= RequireCounter(file, "pool.chunks", 1.0);
  rc |= RequireGauge(file, "train.loss");
  rc |= RequireGauge(file, "train.grad_norm");
  rc |= RequireGauge(file, "workspace.hits");
  rc |= RequireGauge(file, "workspace.retained_bytes");
  const auto span = file.span_attrs.find("train.epoch");
  if (span == file.span_attrs.end()) {
    std::fprintf(stderr, "check_metrics: no train.epoch span recorded\n");
    rc = 1;
  } else if (span->second.count("epoch") == 0 ||
             span->second.count("loss") == 0) {
    std::fprintf(stderr,
                 "check_metrics: train.epoch span lacks epoch/loss attrs\n");
    rc = 1;
  }
  return rc;
}

int CheckInferMode(const ParsedFile& file) {
  int rc = 0;
  rc |= RequireCounter(file, "infer.requests", 1.0);
  rc |= RequireHistogramCount(file, "infer.request_seconds", 1.0);
  // The serving CLI fronts the session with serve::ResilientServer, so a
  // healthy infer run must show serve-layer traffic too.
  rc |= RequireCounter(file, "serve.requests", 1.0);
  rc |= RequireHistogramCount(file, "serve.request_seconds", 1.0);
  rc |= RequireCounter(file, "infer.plan_cache.misses", 1.0);
  rc |= RequireCounter(file, "infer.plan_cache.hits", 0.0);
  const double requests = file.counters.at("infer.requests");
  const double hits = file.counters.count("infer.plan_cache.hits") > 0
                          ? file.counters.at("infer.plan_cache.hits")
                          : 0.0;
  const double misses = file.counters.at("infer.plan_cache.misses");
  if (hits + misses != requests) {
    std::fprintf(stderr,
                 "check_metrics: plan-cache hits (%g) + misses (%g) != "
                 "requests (%g)\n",
                 hits, misses, requests);
    rc = 1;
  }
  // The micro-batching scheduler (check.sh runs the infer leg with
  // --batch-max/--batch-graphs): at least one multi-member batch must have
  // been fused and scattered, with its scheduler histograms populated.
  // Fused members run through infer.batch.* (never infer.requests or the
  // plan cache), so the cache consistency check above stays exact.
  rc |= RequireCounter(file, "serve.batch.batches", 1.0);
  rc |= RequireCounter(file, "serve.batch.fused_requests", 2.0);
  rc |= RequireHistogramCount(file, "serve.batch.size", 1.0);
  rc |= RequireHistogramCount(file, "serve.batch.queue_wait_seconds", 1.0);
  rc |= RequireCounter(file, "infer.batch.runs", 1.0);
  rc |= RequireCounter(file, "infer.batch.members", 2.0);
  if (file.counters.count("infer.batch.members") > 0 &&
      file.counters.count("serve.batch.fused_requests") > 0 &&
      file.counters.at("infer.batch.members") !=
          file.counters.at("serve.batch.fused_requests")) {
    std::fprintf(stderr,
                 "check_metrics: infer.batch.members (%g) != "
                 "serve.batch.fused_requests (%g)\n",
                 file.counters.at("infer.batch.members"),
                 file.counters.at("serve.batch.fused_requests"));
    rc = 1;
  }
  return rc;
}

// serve-loop mode: the long-lived server path (adamgnn_infer --serve-loop).
// Beyond raw serve traffic, the lifecycle must have moved through
// Starting→Ready→Draining→Stopped (>= 3 transitions), at least one drain
// must have completed, the watchdog must have swept at least once, and the
// hot-swap registry's ledger must balance: every reload attempt is either a
// success or a rejection.
int CheckServeMode(const ParsedFile& file) {
  int rc = 0;
  rc |= RequireCounter(file, "serve.requests", 1.0);
  rc |= RequireHistogramCount(file, "serve.request_seconds", 1.0);
  rc |= RequireCounter(file, "serve.lifecycle.transitions", 3.0);
  rc |= RequireGauge(file, "serve.lifecycle.state");
  rc |= RequireCounter(file, "serve.lifecycle.drains", 1.0);
  rc |= RequireCounter(file, "serve.reload.attempts", 1.0);
  rc |= RequireGauge(file, "serve.reload.current_version");
  rc |= RequireCounter(file, "serve.watchdog.sweeps", 1.0);
  const auto counter_or_zero = [&file](const char* name) {
    auto it = file.counters.find(name);
    return it == file.counters.end() ? 0.0 : it->second;
  };
  const double attempts = counter_or_zero("serve.reload.attempts");
  const double success = counter_or_zero("serve.reload.success");
  const double rejected = counter_or_zero("serve.reload.rejected");
  if (attempts != success + rejected) {
    std::fprintf(stderr,
                 "check_metrics: serve.reload.attempts (%g) != success (%g) "
                 "+ rejected (%g)\n",
                 attempts, success, rejected);
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file_path;
  std::string mode = "any";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--file=", 0) == 0) {
      file_path = arg.substr(7);
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: check_metrics --file=metrics.jsonl "
                   "[--mode=any|train|infer|serve|off]\n");
      return 2;
    }
  }
  if (file_path.empty() ||
      (mode != "any" && mode != "train" && mode != "infer" &&
       mode != "serve" && mode != "off")) {
    std::fprintf(stderr,
                 "usage: check_metrics --file=metrics.jsonl "
                 "[--mode=any|train|infer|serve|off]\n");
    return 2;
  }

  std::ifstream in(file_path);
  if (!in) {
    std::fprintf(stderr, "check_metrics: cannot open %s\n", file_path.c_str());
    return 2;
  }

  ParsedFile file;
  bool saw_meta = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue value;
    std::string error;
    if (!JsonParser(line).Parse(&value, &error)) {
      return Fail(line_no, "invalid JSON: " + error);
    }
    if (value.kind != JsonValue::Kind::kObject) {
      return Fail(line_no, "every JSONL line must be an object");
    }
    const JsonValue* type = value.Find("type");
    if (type == nullptr || type->kind != JsonValue::Kind::kString) {
      return Fail(line_no, "missing string \"type\"");
    }

    if (type->str == "meta") {
      if (saw_meta) return Fail(line_no, "duplicate meta line");
      if (line_no != 1) return Fail(line_no, "meta must be the first line");
      saw_meta = true;
      const JsonValue* compiled = value.Find("compiled");
      const JsonValue* enabled = value.Find("enabled");
      const JsonValue* version = value.Find("version");
      if (compiled == nullptr || compiled->kind != JsonValue::Kind::kBool ||
          enabled == nullptr || enabled->kind != JsonValue::Kind::kBool ||
          version == nullptr || !version->IsNumber()) {
        return Fail(line_no, "meta needs version/compiled/enabled");
      }
      file.compiled = compiled->bool_value;
      file.enabled = enabled->bool_value;
    } else if (type->str == "counter") {
      std::string err;
      const JsonValue* name =
          RequireMember(value, "name", JsonValue::Kind::kString, line_no,
                        &err);
      if (name == nullptr) return Fail(line_no, err);
      const JsonValue* v = value.Find("value");
      if (v == nullptr || !v->IsNumber() || v->number < 0) {
        return Fail(line_no, "counter value must be a non-negative number");
      }
      file.counters[name->str] = v->number;
    } else if (type->str == "gauge") {
      std::string err;
      const JsonValue* name =
          RequireMember(value, "name", JsonValue::Kind::kString, line_no,
                        &err);
      if (name == nullptr) return Fail(line_no, err);
      const JsonValue* v = value.Find("value");
      if (v == nullptr ||
          (!v->IsNumber() && v->kind != JsonValue::Kind::kNull)) {
        return Fail(line_no, "gauge value must be a number or null");
      }
      file.gauges[name->str] = v->IsNumber() ? v->number : 0.0;
    } else if (type->str == "histogram") {
      const int rc = CheckHistogram(value, line_no, &file);
      if (rc != 0) return rc;
    } else if (type->str == "span") {
      const int rc = CheckSpan(value, line_no, &file);
      if (rc != 0) return rc;
    } else {
      return Fail(line_no, "unknown line type \"" + type->str + "\"");
    }
  }
  if (!saw_meta) {
    std::fprintf(stderr, "check_metrics: no meta line found\n");
    return 1;
  }

  int rc = 0;
  if (mode == "off") {
    if (file.compiled) {
      std::fprintf(stderr,
                   "check_metrics: expected compiled:false meta (obs built "
                   "out), got compiled:true\n");
      rc = 1;
    }
    if (!file.counters.empty() || !file.gauges.empty() ||
        !file.hist_counts.empty() || !file.span_names.empty()) {
      std::fprintf(stderr,
                   "check_metrics: obs-off file must contain only the meta "
                   "line\n");
      rc = 1;
    }
  } else if (mode == "train") {
    rc = CheckTrainMode(file);
  } else if (mode == "infer") {
    rc = CheckInferMode(file);
  } else if (mode == "serve") {
    rc = CheckServeMode(file);
  }
  if (rc == 0) {
    std::printf(
        "check_metrics: OK (%zu counters, %zu gauges, %zu histograms, %zu "
        "spans, mode=%s)\n",
        file.counters.size(), file.gauges.size(), file.hist_counts.size(),
        file.span_names.size(), mode.c_str());
  }
  return rc;
}
