// adamgnn_infer — serving CLI for trained AdamGNN checkpoints.
//
// Usage:
//   adamgnn_infer --task=nc --load=model.ckpt --synthetic=cora [--scale=0.2]
//                 [--seed=1] [--levels=3] [--hidden=64] [--threads=N]
//                 [--output=pred.tsv] [--repeat=N]
//   adamgnn_infer --task=lp --load=model.ckpt --edges=g.txt --features=x.txt
//                 [...]
//
// Loads frozen weights written by `adamgnn_train --save`, builds one
// core::GraphPlan for the input graph, and runs the tape-free
// core::InferenceSession — no autograd tape, no gradient bookkeeping,
// predictions bitwise-identical to the trainer's eval-mode forward at the
// same checkpoint. --repeat measures the warm-plan path: repeated queries
// against the same graph hit the session's per-plan result cache and skip
// the pooling cascade entirely.
//
// Output (--output, default stdout): `node<TAB>class` lines for nc (the
// same format as `adamgnn_train --dump-predictions`), `u<TAB>v<TAB>score`
// lines over the graph's edges for lp.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/adamgnn_model.h"
#include "core/graph_plan.h"
#include "core/inference_session.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "tools/cli_common.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace adamgnn;  // CLI tool; library code never does this
using cli::FlagOr;

const std::set<std::string>& KnownFlags() {
  static const std::set<std::string>* kKnown = new std::set<std::string>{
      "help",    "task",  "load",   "edges",  "features", "labels",
      "synthetic", "scale", "levels", "hidden", "classes",  "seed",
      "threads", "output", "repeat", "metrics-out",
  };
  return *kKnown;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = cli::ParseFlags(argc, argv, KnownFlags());
  if (flags.count("help") > 0) {
    std::printf(
        "usage: adamgnn_infer --task=nc|lp --load=CKPT (--edges=F "
        "[--features=F] [--labels=F] | "
        "--synthetic=acm|citeseer|cora|emails|dblp|wiki [--scale=S]) "
        "[--levels=K] [--hidden=D] [--classes=C] [--seed=S] [--threads=N] "
        "[--output=FILE] [--repeat=N]\n"
        "  --load=CKPT   checkpoint from `adamgnn_train --save` (model\n"
        "                shape flags --levels/--hidden/--classes must match\n"
        "                the training run)\n"
        "  --output=FILE predictions file (default: stdout).\n"
        "                nc: node<TAB>class, lp: u<TAB>v<TAB>score\n"
        "  --repeat=N    run N extra warm queries against the cached plan\n"
        "                and report cold vs. warm latency\n"
        "  --metrics-out=FILE  write request-latency histograms, plan-cache\n"
        "                hit/miss counters, and trace spans as JSONL; \"-\"\n"
        "                means stdout. ADAMGNN_METRICS env is the fallback.\n");
    return 0;
  }
  cli::ConfigureThreadsOrDie(flags);

  const std::string load = FlagOr(flags, "load", "");
  if (load.empty()) {
    std::fprintf(stderr, "--load=CKPT is required\n");
    return 2;
  }
  const std::string task = FlagOr(flags, "task", "nc");
  if (task != "nc" && task != "lp") {
    std::fprintf(stderr, "unknown --task=%s (expected nc or lp)\n",
                 task.c_str());
    return 2;
  }

  auto graph_result = cli::LoadInput(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 2;
  }
  graph::Graph g = std::move(graph_result).ValueOrDie();
  if (!g.has_features()) {
    std::fprintf(stderr, "input graph has no node features\n");
    return 2;
  }
  std::fprintf(stderr, "loaded %s\n", g.DebugString().c_str());

  core::AdamGnnConfig config;
  config.in_dim = g.feature_dim();
  config.hidden_dim = static_cast<size_t>(
      cli::IntFlagOr(flags, "hidden", cli::kDefaultHidden));
  config.num_levels = static_cast<int>(
      cli::IntFlagOr(flags, "levels", cli::kDefaultLevels));
  if (task == "nc") {
    const int classes =
        static_cast<int>(cli::IntFlagOr(flags, "classes", "0"));
    if (classes > 0) {
      config.num_classes = static_cast<size_t>(classes);
    } else if (g.has_labels()) {
      config.num_classes = static_cast<size_t>(g.num_classes());
    } else {
      std::fprintf(stderr, "--task=nc needs --classes or labeled input\n");
      return 2;
    }
  }

  // The init RNG only seeds weights that LoadParameters overwrites.
  util::Rng rng(static_cast<uint64_t>(
      cli::IntFlagOr(flags, "seed", cli::kDefaultSeed)));
  core::AdamGnn model(config, &rng);
  // Mirror the trainer's parameter order: link prediction checkpoints append
  // the decoder projection after the core model's tensors.
  nn::Linear projection(config.hidden_dim, config.hidden_dim,
                        /*use_bias=*/false, &rng);
  std::vector<autograd::Variable> params = model.Parameters();
  if (task == "lp") {
    for (auto& p : projection.Parameters()) params.push_back(p);
  }
  util::Status load_status = nn::LoadParameters(load, &params);
  if (!load_status.ok()) {
    std::fprintf(stderr, "%s\n", load_status.ToString().c_str());
    return 1;
  }

  // Cold query: plan construction + the full pooling cascade.
  util::Stopwatch cold_watch;
  core::InferenceSession session(model);
  std::shared_ptr<const core::GraphPlan> plan =
      core::GraphPlan::Build(g, config.lambda);
  const core::InferenceSession::Result& result = session.Run(plan);
  const double cold_ms = cold_watch.ElapsedSeconds() * 1e3;

  const int repeat = static_cast<int>(cli::IntFlagOr(flags, "repeat", "0"));
  if (repeat > 0) {
    util::Stopwatch warm_watch;
    for (int i = 0; i < repeat; ++i) session.Run(plan);
    const double warm_ms = warm_watch.ElapsedSeconds() * 1e3 / repeat;
    std::fprintf(stderr, "cold query %.3f ms, warm query %.3f ms (x%d)\n",
                 cold_ms, warm_ms, repeat);
  } else {
    std::fprintf(stderr, "cold query %.3f ms\n", cold_ms);
  }

  const std::string output = FlagOr(flags, "output", "");
  std::FILE* out = stdout;
  if (!output.empty()) {
    out = std::fopen(output.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", output.c_str());
      return 1;
    }
  }

  if (task == "nc") {
    std::vector<int> pred = session.PredictNodes(plan);
    for (size_t i = 0; i < pred.size(); ++i) {
      std::fprintf(out, "%zu\t%d\n", i, pred[i]);
    }
  } else {
    // Decoder-space link scores for every edge of the input graph.
    tensor::Matrix h = nn::Linear::ForwardValues(
        result.embeddings, projection.weight().value(), tensor::Matrix());
    for (graph::NodeId u = 0; static_cast<size_t>(u) < g.num_nodes(); ++u) {
      for (graph::NodeId v : g.Neighbors(u)) {
        if (v < u) continue;  // each undirected edge once
        double s = 0.0;
        const double* a = h.row(static_cast<size_t>(u));
        const double* b = h.row(static_cast<size_t>(v));
        for (size_t j = 0; j < h.cols(); ++j) s += a[j] * b[j];
        std::fprintf(out, "%lld\t%lld\t%.17g\n", static_cast<long long>(u),
                     static_cast<long long>(v), s);
      }
    }
  }
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "predictions written to %s\n", output.c_str());
  }
  cli::DumpMetricsOrDie(flags);
  return 0;
}
