// adamgnn_infer — serving CLI for trained AdamGNN checkpoints.
//
// Usage:
//   adamgnn_infer --task=nc --load=model.ckpt --synthetic=cora [--scale=0.2]
//                 [--seed=1] [--levels=3] [--hidden=64] [--threads=N]
//                 [--output=pred.tsv] [--repeat=N] [--timeout-ms=T]
//                 [--max-inflight=B] [--max-retries=R]
//                 [--batch-max=B] [--batch-wait-us=U] [--batch-graphs=N]
//   adamgnn_infer --task=lp --load=model.ckpt --edges=g.txt --features=x.txt
//                 [...]
//   adamgnn_infer --task=nc --load=model.ckpt --synthetic=cora --serve-loop
//                 [--serve-iters=N] [--serve-clients=C] [--reload-on=MARKER]
//                 [--drain-timeout-ms=T] [--watchdog-factor=F]
//
// Loads frozen weights written by `adamgnn_train --save` and serves the
// input graph through serve::ResilientServer: request deadline
// (--timeout-ms), admission budget (--max-inflight), bounded retries with a
// per-plan circuit breaker, and graceful degradation to a shallow plan or a
// stale cached result when the full path cannot complete. Responses that ran
// the full plan are bitwise-identical to the trainer's eval-mode forward at
// the same checkpoint. --repeat measures the warm path: repeated requests
// for the same graph hit the session's per-plan result cache.
//
// Micro-batching: --batch-max=B (> 1) turns on the server's batching
// scheduler — concurrent requests are fused into one block-diagonal forward
// (waiting up to --batch-wait-us for the batch to fill) and scattered back
// per request, bitwise-identical to serving each graph alone.
// --batch-graphs=N (synthetic input only) fans out N concurrent client
// threads, each serving its own seed-variant of the input graph, to
// exercise the scheduler from a single CLI invocation.
//
// Serve-loop mode (--serve-loop): the process becomes a long-running server
// with a full lifecycle. The checkpoint is published through the versioned
// serve::ModelRegistry (canary-gated), --serve-clients worker threads issue
// a continuous request stream, and the main thread polls --reload-on: when
// that marker file appears, its first line names a checkpoint to hot-swap
// in (empty line = reload --load; the literal word `rollback` = swap back
// to the last-known-good version), and the marker is removed. A rejected
// reload (corrupt file, canary-gate failure) is logged and the current
// version keeps serving. SIGTERM/SIGINT triggers a graceful drain: new
// requests are shed with Unavailable, in-flight requests finish (bounded by
// --drain-timeout-ms, after which stragglers are cancelled), and the
// process exits 0 — or 5 if the drain deadline cancelled anyone.
//
// Exit codes (scriptable — see tools/check.sh):
//   0  success (including degraded-mode responses; stderr names the mode)
//   1  internal error (checkpoint write failure, unexpected status)
//   2  bad flags / usage
//   3  invalid input (unreadable or corrupt graph/feature/label/checkpoint
//      files, NaN/Inf features, out-of-range edge endpoints)
//   4  deadline exceeded or resources exhausted (admission reject, retry
//      budget spent, circuit breaker open) with no degraded fallback
//   5  drain timeout: shutdown completed but in-flight stragglers had to be
//      cancelled at the drain deadline (serve-loop mode only)
//
// Output (--output, default stdout): `node<TAB>class` lines for nc (the
// same format as `adamgnn_train --dump-predictions`), `u<TAB>v<TAB>score`
// lines over the graph's edges for lp.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/adamgnn_model.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "serve/lifecycle.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "tools/cli_common.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/signal.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace adamgnn;  // CLI tool; library code never does this
using cli::FlagOr;

// Single source of truth for the tool's flag surface: the known-flag set
// (strict parsing) and the --help listing are both derived from this table,
// so every flag is documented exactly once.
const std::vector<cli::FlagSpec>& Specs() {
  static const std::vector<cli::FlagSpec>* kSpecs =
      new std::vector<cli::FlagSpec>{
          {"help", "print this flag list and exit"},
          {"task", "nc (node classification, default) or lp (link "
                   "prediction)"},
          {"load", "checkpoint from `adamgnn_train --save` (model shape "
                   "flags\n--levels/--hidden/--classes must match the "
                   "training run); required"},
          {"edges", "edge-list input file (one `u v [w]` line per edge)"},
          {"features", "node-feature file for --edges input"},
          {"labels", "node-label file for --edges input"},
          {"synthetic", "built-in dataset: acm|citeseer|cora|emails|dblp|"
                        "wiki"},
          {"scale", "synthetic dataset size multiplier (default 0.2)"},
          {"levels", "pooling levels; must match training (default 3)"},
          {"hidden", "hidden width; must match training (default 64)"},
          {"classes", "class count for --task=nc on unlabeled input"},
          {"seed", "synthetic-data / scratch-model seed (default 1)"},
          {"threads", "kernel worker threads (default: ADAMGNN_NUM_THREADS "
                      "env\nor hardware concurrency)"},
          {"isa", "scalar|sse2|avx2: force the SIMD kernel backend "
                  "(default:\nADAMGNN_ISA env or best supported); exits 2 "
                  "if the CPU\ncannot run it"},
          {"output", "predictions file (default: stdout).\nnc: "
                     "node<TAB>class, lp: u<TAB>v<TAB>score"},
          {"repeat", "run N extra warm queries against the cached plan and\n"
                     "report cold vs. warm latency"},
          {"metrics-out", "write request-latency histograms, serve.* "
                          "resilience\ncounters, plan-cache counters, and "
                          "trace spans as JSONL;\n\"-\" means stdout. "
                          "ADAMGNN_METRICS env is the fallback"},
          {"timeout-ms", "per-request deadline in milliseconds; an expired\n"
                         "request aborts mid-plan or mid-forward with exit "
                         "4\n(0 = already expired, useful for drills)"},
          {"max-inflight", "admission budget (default 64); over-budget "
                           "requests\nare shed with exit 4"},
          {"max-retries", "extra attempts for transient failures (default "
                          "1)"},
          {"batch-max", "fuse up to B concurrent requests into one\n"
                        "block-diagonal forward (default 1 = no batching);\n"
                        "per-request results are bitwise-identical to "
                        "serving\neach graph alone"},
          {"batch-wait-us", "how long the batch leader waits for the batch "
                            "to fill\nbefore launching what has queued "
                            "(default 0)"},
          {"batch-graphs", "fan out N concurrent client threads over N\n"
                           "seed-variants of the synthetic input graph\n"
                           "(rejected with --edges input)"},
          {"print-config", "print the resolved effective configuration\n"
                           "(threads, ISA, obs state, serve limits) as one "
                           "JSON\nline on stdout and exit 0"},
          {"serve-loop", "run as a long-lived server: client threads issue "
                         "a\ncontinuous request stream, --reload-on is "
                         "polled for\nhot-swaps, SIGTERM/SIGINT drains "
                         "gracefully"},
          {"serve-iters", "serve-loop: stop after N total requests "
                          "(default 0 =\nrun until a shutdown signal)"},
          {"serve-clients", "serve-loop: concurrent client threads "
                            "(default 2)"},
          {"reload-on", "serve-loop: marker-file path polled for hot-swap\n"
                        "commands; first line = checkpoint path (empty "
                        "line =\nreload --load, `rollback` = restore "
                        "last-known-good);\nthe marker is removed after "
                        "each poll"},
          {"drain-timeout-ms", "serve-loop: how long a signal-triggered "
                               "drain waits\nfor in-flight requests before "
                               "cancelling stragglers\n(default 2000); "
                               "exceeding it exits 5"},
          {"watchdog-factor", "serve-loop: cancel any request running "
                              "longer than\nF x its deadline (default 4)"},
          {"watchdog-poll-ms", "serve-loop: watchdog sweep interval "
                               "(default 10)"},
          {"canary-tolerance", "serve-loop: max per-element probe-output "
                               "divergence a\nreloaded checkpoint may show "
                               "vs. the serving version\n(default -1 = "
                               "divergence gate off; NaN/Inf and shape\n"
                               "gates always run)"},
          {"inject-alloc-fault-at",
           "deterministically fail tensor allocations starting at\nthe Nth "
           "(resilience drills)"},
          {"inject-alloc-fault-count",
           "how many consecutive allocations fail (default 1)"},
          {"inject-deadline-at-check",
           "expire the deadline at the Nth cooperative check\n(needs "
           "--timeout-ms)"},
          {"inject-queue-delay-us",
           "stall the batch leader U microseconds before every\ncollection "
           "window (drills)"},
      };
  return *kSpecs;
}

/// Maps a serving/input Status onto the CLI's exit-code contract.
int ExitCodeFor(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kDeadlineExceeded:
    case util::StatusCode::kResourceExhausted:
    case util::StatusCode::kCancelled:
    case util::StatusCode::kUnavailable:
      return 4;
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kFailedPrecondition:
    case util::StatusCode::kNotFound:
      return 3;
    default:
      return 1;
  }
}

constexpr int kExitDrainTimeout = 5;

/// Arms the deterministic fault injector from the --inject-* flags. Called
/// at the point where the counted events should start being serving work.
void ArmFaultInjectionFromFlags(const cli::FlagMap& flags) {
  const int alloc_at = static_cast<int>(
      cli::IntFlagOr(flags, "inject-alloc-fault-at", "0"));
  const int alloc_count = static_cast<int>(
      cli::IntFlagOr(flags, "inject-alloc-fault-count", "1"));
  const int deadline_at = static_cast<int>(
      cli::IntFlagOr(flags, "inject-deadline-at-check", "0"));
  const int queue_delay_us = static_cast<int>(
      cli::IntFlagOr(flags, "inject-queue-delay-us", "0"));
  if (alloc_at > 0 || deadline_at > 0 || queue_delay_us > 0) {
    util::FaultPlan fault_plan;
    fault_plan.fail_alloc_at = alloc_at;
    fault_plan.fail_alloc_count = alloc_count;
    fault_plan.expire_deadline_at_check = deadline_at;
    fault_plan.queue_delay_us = queue_delay_us;
    util::FaultInjector::Instance().Arm(fault_plan);
  }
}

/// One --reload-on poll: consume the marker file (if present) and apply the
/// command it carries. Reload failures are logged and swallowed — the
/// current version keeps serving, which is the whole point of the gate.
void PollReloadMarker(const std::string& marker,
                      const std::string& default_ckpt,
                      serve::ModelRegistry* registry) {
  std::FILE* f = std::fopen(marker.c_str(), "r");
  if (f == nullptr) return;
  char buf[4096] = {0};
  std::string line;
  if (std::fgets(buf, sizeof(buf), f) != nullptr) line = buf;
  std::fclose(f);
  std::remove(marker.c_str());
  while (!line.empty() &&
         (line.back() == '\n' || line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  if (line == "rollback") {
    util::Status st = registry->Rollback();
    if (st.ok()) {
      std::fprintf(stderr, "serve-loop: rollback ok version=%llu\n",
                   static_cast<unsigned long long>(registry->Current()->id()));
    } else {
      std::fprintf(stderr, "serve-loop: rollback failed: %s\n",
                   st.ToString().c_str());
    }
    return;
  }
  const std::string path = line.empty() ? default_ckpt : line;
  auto loaded = registry->TryLoadVersion(path);
  if (loaded.ok()) {
    std::fprintf(
        stderr, "serve-loop: reload ok version=%llu fp=%016llx path=%s\n",
        static_cast<unsigned long long>(loaded.ValueOrDie()->id()),
        static_cast<unsigned long long>(
            loaded.ValueOrDie()->weights_fingerprint()),
        path.c_str());
  } else {
    std::fprintf(stderr, "serve-loop: reload rejected (still serving): %s\n",
                 loaded.status().ToString().c_str());
  }
}

/// The --serve-loop server body. Returns the process exit code.
int RunServeLoop(const cli::FlagMap& flags, const std::string& task,
                 const std::string& load, const graph::Graph& g,
                 const core::AdamGnnConfig& config,
                 serve::ServerOptions server_options,
                 const serve::RequestOptions& base_request) {
  serve::LifecycleOptions lc_options;
  lc_options.drain_timeout_s =
      cli::DoubleFlagOr(flags, "drain-timeout-ms", "2000") / 1e3;
  lc_options.watchdog_factor = cli::DoubleFlagOr(flags, "watchdog-factor",
                                                 "4");
  lc_options.watchdog_poll_s =
      cli::DoubleFlagOr(flags, "watchdog-poll-ms", "10") / 1e3;
  if (lc_options.watchdog_factor < 1.0) {
    std::fprintf(stderr, "--watchdog-factor must be >= 1\n");
    return 2;
  }

  // Declared before the registry on purpose: every version's server holds a
  // raw lifecycle pointer, so the registry (and its versions) must unwind
  // first.
  serve::ServerLifecycle lifecycle(lc_options);
  server_options.lifecycle = &lifecycle;

  serve::ModelRegistryOptions reg_options;
  reg_options.config = config;
  reg_options.server = server_options;
  reg_options.scratch_seed = static_cast<uint64_t>(
      cli::IntFlagOr(flags, "seed", cli::kDefaultSeed));
  reg_options.canary_tolerance =
      cli::DoubleFlagOr(flags, "canary-tolerance", "-1");
  if (task == "lp") {
    // Mirror the trainer's parameter order: lp checkpoints append the
    // decoder projection after the core model's tensors.
    const size_t hidden = config.hidden_dim;
    reg_options.make_extra_params = [hidden](util::Rng* rng) {
      nn::Linear projection(hidden, hidden, /*use_bias=*/false, rng);
      return projection.Parameters();
    };
  }
  // The serving input doubles as the pinned canary probe: every candidate
  // version must produce sane outputs on the exact graph it will serve.
  serve::ModelRegistry registry(reg_options, g);

  auto first = registry.TryLoadVersion(load);
  if (!first.ok()) {
    std::fprintf(stderr, "serve-loop: initial load failed: %s\n",
                 first.status().ToString().c_str());
    return ExitCodeFor(first.status());
  }

  util::Status sig = util::InstallShutdownHandlers();
  if (!sig.ok()) {
    std::fprintf(stderr, "%s\n", sig.ToString().c_str());
    return 1;
  }
  lifecycle.MarkReady();
  lifecycle.StartWatchdog();
  std::fprintf(stderr, "serve-loop: ready version=%llu fp=%016llx\n",
               static_cast<unsigned long long>(first.ValueOrDie()->id()),
               static_cast<unsigned long long>(
                   first.ValueOrDie()->weights_fingerprint()));

  // Injected faults start counting HERE: everything before this line
  // (initial load, canary, warm snapshot) is startup, not serving.
  ArmFaultInjectionFromFlags(flags);

  const long long serve_iters = cli::IntFlagOr(flags, "serve-iters", "0");
  const int clients =
      static_cast<int>(cli::IntFlagOr(flags, "serve-clients", "2"));
  if (clients < 1 || serve_iters < 0) {
    std::fprintf(stderr,
                 "--serve-clients must be >= 1, --serve-iters >= 0\n");
    return 2;
  }

  std::atomic<long long> issued{0};
  std::atomic<long long> answered{0};
  std::atomic<long long> degraded{0};
  std::atomic<long long> shed{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> internal_error{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    workers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        const long long n = issued.fetch_add(1, std::memory_order_relaxed);
        if (serve_iters > 0 && n >= serve_iters) {
          issued.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
        // Pin ONE published version for the whole request: the response is
        // computed wholly against it even if a hot-swap lands mid-forward.
        std::shared_ptr<serve::ModelVersion> version = registry.Current();
        if (version == nullptr) break;
        util::Result<serve::ServeResult> r =
            version->server().Serve(g, base_request);
        if (r.ok()) {
          answered.fetch_add(1, std::memory_order_relaxed);
          if (r.ValueOrDie().mode != serve::ServeMode::kFull) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        const util::StatusCode code = r.status().code();
        if (code == util::StatusCode::kUnavailable &&
            lifecycle.state() != serve::LifecycleState::kReady) {
          break;  // draining/stopping: not an accepted request, just stop
        }
        if (code == util::StatusCode::kDeadlineExceeded ||
            code == util::StatusCode::kResourceExhausted ||
            code == util::StatusCode::kCancelled ||
            code == util::StatusCode::kUnavailable) {
          shed.fetch_add(1, std::memory_order_relaxed);  // taxonomy shed
          continue;
        }
        std::fprintf(stderr, "serve-loop: request failed: %s\n",
                     r.status().ToString().c_str());
        internal_error.store(true, std::memory_order_relaxed);
      }
    });
  }

  const std::string reload_on = FlagOr(flags, "reload-on", "");
  while (true) {
    if (util::ShutdownRequested()) {
      std::fprintf(stderr, "serve-loop: shutdown signal %d\n",
                   util::ShutdownSignal());
      break;
    }
    if (serve_iters > 0 &&
        issued.load(std::memory_order_relaxed) >= serve_iters) {
      break;
    }
    if (!reload_on.empty()) PollReloadMarker(reload_on, load, &registry);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  lifecycle.BeginDrain();
  const bool drained_clean = lifecycle.WaitForDrain();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();
  lifecycle.StopWatchdog();
  lifecycle.MarkStopped();

  std::fprintf(stderr,
               "serve-loop: %s answered=%lld degraded=%lld shed=%lld "
               "versions=%zu\n",
               drained_clean ? "drained" : "drain timeout, stragglers "
                                           "cancelled",
               answered.load(), degraded.load(), shed.load(),
               registry.num_versions());
  cli::DumpMetricsOrDie(flags);
  if (internal_error.load()) return 1;
  return drained_clean ? 0 : kExitDrainTimeout;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = cli::ParseFlags(argc, argv, cli::FlagNames(Specs()));
  if (flags.count("help") > 0) {
    std::printf(
        "usage: adamgnn_infer --task=nc|lp --load=CKPT (--edges=F "
        "[--features=F] [--labels=F] | "
        "--synthetic=acm|citeseer|cora|emails|dblp|wiki [--scale=S]) "
        "[flags...]\n"
        "exit codes: 0 ok, 1 internal, 2 bad flags, 3 invalid input,\n"
        "            4 deadline/resources, 5 drain timeout\n"
        "flags:\n");
    cli::PrintFlagHelp(Specs());
    return 0;
  }
  cli::ConfigureThreadsOrDie(flags);
  cli::ConfigureIsaOrDie(flags);

  const std::string task = FlagOr(flags, "task", "nc");

  serve::ServerOptions server_options;
  server_options.max_inflight = static_cast<size_t>(
      cli::IntFlagOr(flags, "max-inflight", "64"));
  server_options.max_retries =
      static_cast<int>(cli::IntFlagOr(flags, "max-retries", "1"));
  const long long batch_max = cli::IntFlagOr(flags, "batch-max", "1");
  const long long batch_wait_us = cli::IntFlagOr(flags, "batch-wait-us", "0");
  if (batch_max < 1 || batch_wait_us < 0) {
    std::fprintf(stderr, "--batch-max must be >= 1, --batch-wait-us >= 0\n");
    return 2;
  }
  server_options.batch_max = static_cast<size_t>(batch_max);
  server_options.batch_wait_us = batch_wait_us;

  serve::RequestOptions request;
  if (flags.count("timeout-ms") > 0) {
    request.timeout_s = cli::DoubleFlagOr(flags, "timeout-ms", "0") / 1e3;
    if (request.timeout_s < 0) {
      std::fprintf(stderr, "--timeout-ms must be >= 0\n");
      return 2;
    }
  }

  if (flags.count("print-config") > 0) {
    cli::PrintEffectiveConfig(
        "adamgnn_infer",
        {{"task", cli::JsonQuote(task)},
         {"serve_loop", flags.count("serve-loop") > 0 ? "true" : "false"},
         {"max_inflight", std::to_string(server_options.max_inflight)},
         {"max_retries", std::to_string(server_options.max_retries)},
         {"batch_max", std::to_string(server_options.batch_max)},
         {"batch_wait_us", std::to_string(server_options.batch_wait_us)},
         {"timeout_ms",
          std::to_string(flags.count("timeout-ms") > 0
                             ? request.timeout_s * 1e3
                             : -1.0)},
         {"drain_timeout_ms",
          cli::FlagOr(flags, "drain-timeout-ms", "2000")},
         {"watchdog_factor", cli::FlagOr(flags, "watchdog-factor", "4")},
         {"canary_tolerance",
          cli::FlagOr(flags, "canary-tolerance", "-1")}});
    return 0;
  }

  const std::string load = FlagOr(flags, "load", "");
  if (load.empty()) {
    std::fprintf(stderr, "--load=CKPT is required\n");
    return 2;
  }
  if (task != "nc" && task != "lp") {
    std::fprintf(stderr, "unknown --task=%s (expected nc or lp)\n",
                 task.c_str());
    return 2;
  }

  auto graph_result = cli::LoadInput(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 3;
  }
  graph::Graph g = std::move(graph_result).ValueOrDie();
  if (!g.has_features()) {
    std::fprintf(stderr, "input graph has no node features\n");
    return 3;
  }
  std::fprintf(stderr, "loaded %s\n", g.DebugString().c_str());

  core::AdamGnnConfig config;
  config.in_dim = g.feature_dim();
  config.hidden_dim = static_cast<size_t>(
      cli::IntFlagOr(flags, "hidden", cli::kDefaultHidden));
  config.num_levels = static_cast<int>(
      cli::IntFlagOr(flags, "levels", cli::kDefaultLevels));
  if (task == "nc") {
    const int classes =
        static_cast<int>(cli::IntFlagOr(flags, "classes", "0"));
    if (classes > 0) {
      config.num_classes = static_cast<size_t>(classes);
    } else if (g.has_labels()) {
      config.num_classes = static_cast<size_t>(g.num_classes());
    } else {
      std::fprintf(stderr, "--task=nc needs --classes or labeled input\n");
      return 2;
    }
  }

  if (flags.count("serve-loop") > 0) {
    return RunServeLoop(flags, task, load, g, config, server_options,
                        request);
  }

  // The init RNG only seeds weights that LoadParameters overwrites.
  util::Rng rng(static_cast<uint64_t>(
      cli::IntFlagOr(flags, "seed", cli::kDefaultSeed)));
  core::AdamGnn model(config, &rng);
  // Mirror the trainer's parameter order: link prediction checkpoints append
  // the decoder projection after the core model's tensors.
  nn::Linear projection(config.hidden_dim, config.hidden_dim,
                        /*use_bias=*/false, &rng);
  std::vector<autograd::Variable> params = model.Parameters();
  if (task == "lp") {
    for (auto& p : projection.Parameters()) params.push_back(p);
  }
  util::Status load_status = nn::LoadParameters(load, &params);
  if (!load_status.ok()) {
    std::fprintf(stderr, "%s\n", load_status.ToString().c_str());
    return 3;
  }

  serve::ResilientServer server(model, server_options);

  // Optional deterministic fault injection for resilience drills. Armed
  // AFTER server construction so the counted allocations are serving work,
  // not the weight snapshot.
  ArmFaultInjectionFromFlags(flags);

  // Cold request: plan construction + the full pooling cascade.
  util::Stopwatch cold_watch;
  util::Result<serve::ServeResult> served = server.Serve(g, request);
  const double cold_ms = cold_watch.ElapsedSeconds() * 1e3;
  if (!served.ok()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 served.status().ToString().c_str());
    cli::DumpMetricsOrDie(flags);  // the drill legs inspect these
    return ExitCodeFor(served.status());
  }
  serve::ServeResult result = std::move(served).ValueOrDie();
  std::fprintf(stderr, "served mode=%s lambda=%d levels=%d attempts=%d\n",
               serve::ServeModeToString(result.mode), result.lambda_used,
               result.levels_used, result.attempts);

  const int repeat = static_cast<int>(cli::IntFlagOr(flags, "repeat", "0"));
  if (repeat > 0) {
    util::Stopwatch warm_watch;
    for (int i = 0; i < repeat; ++i) {
      util::Result<serve::ServeResult> warm = server.Serve(g, request);
      if (!warm.ok()) {
        std::fprintf(stderr, "warm serve failed: %s\n",
                     warm.status().ToString().c_str());
        cli::DumpMetricsOrDie(flags);
        return ExitCodeFor(warm.status());
      }
    }
    const double warm_ms = warm_watch.ElapsedSeconds() * 1e3 / repeat;
    std::fprintf(stderr, "cold request %.3f ms, warm request %.3f ms (x%d)\n",
                 cold_ms, warm_ms, repeat);
  } else {
    std::fprintf(stderr, "cold request %.3f ms\n", cold_ms);
  }

  // Concurrent fan-out over seed-variant graphs: N client threads hit the
  // server at once so the batching scheduler (--batch-max) has something to
  // fuse. The base graph's predictions above are untouched by this section.
  const int batch_graphs =
      static_cast<int>(cli::IntFlagOr(flags, "batch-graphs", "1"));
  if (batch_graphs > 1) {
    if (flags.count("edges") > 0) {
      std::fprintf(stderr,
                   "--batch-graphs needs --synthetic input (seed variants "
                   "of a file graph are not defined)\n");
      return 2;
    }
    const long long base_seed = cli::IntFlagOr(flags, "seed",
                                               cli::kDefaultSeed);
    std::vector<graph::Graph> variants;
    variants.reserve(static_cast<size_t>(batch_graphs) - 1);
    for (int i = 1; i < batch_graphs; ++i) {
      auto variant_flags = flags;
      variant_flags["seed"] = std::to_string(base_seed + i);
      auto variant = cli::LoadInput(variant_flags);
      if (!variant.ok()) {
        std::fprintf(stderr, "%s\n", variant.status().ToString().c_str());
        return 3;
      }
      variants.push_back(std::move(variant).ValueOrDie());
    }
    std::atomic<int> ok_count{0};
    std::atomic<int> degraded_count{0};
    std::mutex failure_mu;
    util::Status first_failure = util::Status::OK();
    util::Stopwatch fanout_watch;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(batch_graphs));
    for (int i = 0; i < batch_graphs; ++i) {
      const graph::Graph* target =
          i == 0 ? &g : &variants[static_cast<size_t>(i) - 1];
      clients.emplace_back([&, target]() {
        util::Result<serve::ServeResult> r = server.Serve(*target, request);
        if (!r.ok()) {
          std::lock_guard<std::mutex> lock(failure_mu);
          if (first_failure.ok()) first_failure = r.status();
          return;
        }
        ok_count.fetch_add(1);
        if (r.ValueOrDie().mode != serve::ServeMode::kFull) {
          degraded_count.fetch_add(1);
        }
      });
    }
    for (auto& t : clients) t.join();
    const double fanout_ms = fanout_watch.ElapsedSeconds() * 1e3;
    std::fprintf(stderr,
                 "batched fan-out: %d concurrent requests, ok=%d "
                 "(degraded=%d) in %.3f ms\n",
                 batch_graphs, ok_count.load(), degraded_count.load(),
                 fanout_ms);
    if (ok_count.load() < batch_graphs) {
      std::fprintf(stderr, "fan-out serve failed: %s\n",
                   first_failure.ToString().c_str());
      cli::DumpMetricsOrDie(flags);
      return ExitCodeFor(first_failure);
    }
  }

  const std::string output = FlagOr(flags, "output", "");
  std::FILE* out = stdout;
  if (!output.empty()) {
    out = std::fopen(output.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", output.c_str());
      return 1;
    }
  }

  if (task == "nc") {
    // Argmax over the served logits (degraded responses stay usable: the
    // shallow forward produces the same shape at lower fidelity).
    const tensor::Matrix& logits = result.logits;
    for (size_t i = 0; i < logits.rows(); ++i) {
      const double* row = logits.row(i);
      size_t best = 0;
      for (size_t c = 1; c < logits.cols(); ++c) {
        if (row[c] > row[best]) best = c;
      }
      std::fprintf(out, "%zu\t%d\n", i, static_cast<int>(best));
    }
  } else {
    // Decoder-space link scores for every edge of the input graph.
    tensor::Matrix h = nn::Linear::ForwardValues(
        result.embeddings, projection.weight().value(), tensor::Matrix());
    for (graph::NodeId u = 0; static_cast<size_t>(u) < g.num_nodes(); ++u) {
      for (graph::NodeId v : g.Neighbors(u)) {
        if (v < u) continue;  // each undirected edge once
        double s = 0.0;
        const double* a = h.row(static_cast<size_t>(u));
        const double* b = h.row(static_cast<size_t>(v));
        for (size_t j = 0; j < h.cols(); ++j) s += a[j] * b[j];
        std::fprintf(out, "%lld\t%lld\t%.17g\n", static_cast<long long>(u),
                     static_cast<long long>(v), s);
      }
    }
  }
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "predictions written to %s\n", output.c_str());
  }
  cli::DumpMetricsOrDie(flags);
  return 0;
}
