// adamgnn_infer — serving CLI for trained AdamGNN checkpoints.
//
// Usage:
//   adamgnn_infer --task=nc --load=model.ckpt --synthetic=cora [--scale=0.2]
//                 [--seed=1] [--levels=3] [--hidden=64] [--threads=N]
//                 [--output=pred.tsv] [--repeat=N] [--timeout-ms=T]
//                 [--max-inflight=B] [--max-retries=R]
//                 [--batch-max=B] [--batch-wait-us=U] [--batch-graphs=N]
//   adamgnn_infer --task=lp --load=model.ckpt --edges=g.txt --features=x.txt
//                 [...]
//
// Loads frozen weights written by `adamgnn_train --save` and serves the
// input graph through serve::ResilientServer: request deadline
// (--timeout-ms), admission budget (--max-inflight), bounded retries with a
// per-plan circuit breaker, and graceful degradation to a shallow plan or a
// stale cached result when the full path cannot complete. Responses that ran
// the full plan are bitwise-identical to the trainer's eval-mode forward at
// the same checkpoint. --repeat measures the warm path: repeated requests
// for the same graph hit the session's per-plan result cache.
//
// Micro-batching: --batch-max=B (> 1) turns on the server's batching
// scheduler — concurrent requests are fused into one block-diagonal forward
// (waiting up to --batch-wait-us for the batch to fill) and scattered back
// per request, bitwise-identical to serving each graph alone.
// --batch-graphs=N (synthetic input only) fans out N concurrent client
// threads, each serving its own seed-variant of the input graph, to
// exercise the scheduler from a single CLI invocation.
//
// Exit codes (scriptable — see tools/check.sh):
//   0  success (including degraded-mode responses; stderr names the mode)
//   1  internal error (checkpoint write failure, unexpected status)
//   2  bad flags / usage
//   3  invalid input (unreadable or corrupt graph/feature/label/checkpoint
//      files, NaN/Inf features, out-of-range edge endpoints)
//   4  deadline exceeded or resources exhausted (admission reject, retry
//      budget spent, circuit breaker open) with no degraded fallback
//
// Fault-injection flags (deterministic, for resilience drills):
//   --inject-alloc-fault-at=N [--inject-alloc-fault-count=C] fail C
//       consecutive tensor-allocation checkpoints starting at the Nth;
//   --inject-deadline-at-check=N report the request deadline as expired
//       from the Nth cooperative check onward (needs --timeout-ms so the
//       request carries a deadline token);
//   --inject-queue-delay-us=U stall the batching scheduler's leader U
//       microseconds before every collection window (with --timeout-ms this
//       forces deterministic mid-queue deadline expiry).
//
// Output (--output, default stdout): `node<TAB>class` lines for nc (the
// same format as `adamgnn_train --dump-predictions`), `u<TAB>v<TAB>score`
// lines over the graph's edges for lp.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/adamgnn_model.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "serve/server.h"
#include "tools/cli_common.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace adamgnn;  // CLI tool; library code never does this
using cli::FlagOr;

const std::set<std::string>& KnownFlags() {
  static const std::set<std::string>* kKnown = new std::set<std::string>{
      "help",        "task",         "load",
      "edges",       "features",     "labels",
      "synthetic",   "scale",        "levels",
      "hidden",      "classes",      "seed",
      "threads",     "isa",          "output",
      "repeat",
      "metrics-out", "timeout-ms",   "max-inflight",
      "max-retries", "batch-max",    "batch-wait-us",
      "batch-graphs", "inject-alloc-fault-at", "inject-alloc-fault-count",
      "inject-deadline-at-check", "inject-queue-delay-us",
  };
  return *kKnown;
}

/// Maps a serving/input Status onto the CLI's exit-code contract.
int ExitCodeFor(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kDeadlineExceeded:
    case util::StatusCode::kResourceExhausted:
    case util::StatusCode::kCancelled:
    case util::StatusCode::kUnavailable:
      return 4;
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kFailedPrecondition:
    case util::StatusCode::kNotFound:
      return 3;
    default:
      return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = cli::ParseFlags(argc, argv, KnownFlags());
  if (flags.count("help") > 0) {
    std::printf(
        "usage: adamgnn_infer --task=nc|lp --load=CKPT (--edges=F "
        "[--features=F] [--labels=F] | "
        "--synthetic=acm|citeseer|cora|emails|dblp|wiki [--scale=S]) "
        "[--levels=K] [--hidden=D] [--classes=C] [--seed=S] [--threads=N] "
        "[--output=FILE] [--repeat=N] [--timeout-ms=T] [--max-inflight=B] "
        "[--max-retries=R]\n"
        "  --load=CKPT   checkpoint from `adamgnn_train --save` (model\n"
        "                shape flags --levels/--hidden/--classes must match\n"
        "                the training run)\n"
        "  --output=FILE predictions file (default: stdout).\n"
        "                nc: node<TAB>class, lp: u<TAB>v<TAB>score\n"
        "  --isa=scalar|sse2|avx2  force the SIMD kernel backend (default:\n"
        "                ADAMGNN_ISA env or best supported); exits 2 if the\n"
        "                CPU cannot run it\n"
        "  --repeat=N    run N extra warm queries against the cached plan\n"
        "                and report cold vs. warm latency\n"
        "  --timeout-ms=T  per-request deadline in milliseconds; an expired\n"
        "                request aborts mid-plan or mid-forward with exit 4\n"
        "                (0 = already expired, useful for drills)\n"
        "  --max-inflight=B  admission budget (default 64); over-budget\n"
        "                requests are shed with exit 4\n"
        "  --max-retries=R  extra attempts for transient failures\n"
        "                (default 1)\n"
        "  --batch-max=B  fuse up to B concurrent requests into one\n"
        "                block-diagonal forward (default 1 = no batching);\n"
        "                per-request results are bitwise-identical to\n"
        "                serving each graph alone\n"
        "  --batch-wait-us=U  how long the batch leader waits for the batch\n"
        "                to fill before launching what has queued (default 0)\n"
        "  --batch-graphs=N  fan out N concurrent client threads over N\n"
        "                seed-variants of the synthetic input graph\n"
        "                (rejected with --edges input)\n"
        "  --inject-alloc-fault-at=N [--inject-alloc-fault-count=C]\n"
        "                deterministically fail C tensor allocations\n"
        "                starting at the Nth (resilience drills)\n"
        "  --inject-deadline-at-check=N  expire the deadline at the Nth\n"
        "                cooperative check (needs --timeout-ms)\n"
        "  --inject-queue-delay-us=U  stall the batch leader U microseconds\n"
        "                before every collection window (drills)\n"
        "  --metrics-out=FILE  write request-latency histograms, serve.*\n"
        "                resilience counters, plan-cache hit/miss counters,\n"
        "                and trace spans as JSONL; \"-\" means stdout.\n"
        "                ADAMGNN_METRICS env is the fallback.\n"
        "exit codes: 0 ok, 1 internal, 2 bad flags, 3 invalid input,\n"
        "            4 deadline/resources\n");
    return 0;
  }
  cli::ConfigureThreadsOrDie(flags);
  cli::ConfigureIsaOrDie(flags);

  const std::string load = FlagOr(flags, "load", "");
  if (load.empty()) {
    std::fprintf(stderr, "--load=CKPT is required\n");
    return 2;
  }
  const std::string task = FlagOr(flags, "task", "nc");
  if (task != "nc" && task != "lp") {
    std::fprintf(stderr, "unknown --task=%s (expected nc or lp)\n",
                 task.c_str());
    return 2;
  }

  auto graph_result = cli::LoadInput(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 3;
  }
  graph::Graph g = std::move(graph_result).ValueOrDie();
  if (!g.has_features()) {
    std::fprintf(stderr, "input graph has no node features\n");
    return 3;
  }
  std::fprintf(stderr, "loaded %s\n", g.DebugString().c_str());

  core::AdamGnnConfig config;
  config.in_dim = g.feature_dim();
  config.hidden_dim = static_cast<size_t>(
      cli::IntFlagOr(flags, "hidden", cli::kDefaultHidden));
  config.num_levels = static_cast<int>(
      cli::IntFlagOr(flags, "levels", cli::kDefaultLevels));
  if (task == "nc") {
    const int classes =
        static_cast<int>(cli::IntFlagOr(flags, "classes", "0"));
    if (classes > 0) {
      config.num_classes = static_cast<size_t>(classes);
    } else if (g.has_labels()) {
      config.num_classes = static_cast<size_t>(g.num_classes());
    } else {
      std::fprintf(stderr, "--task=nc needs --classes or labeled input\n");
      return 2;
    }
  }

  // The init RNG only seeds weights that LoadParameters overwrites.
  util::Rng rng(static_cast<uint64_t>(
      cli::IntFlagOr(flags, "seed", cli::kDefaultSeed)));
  core::AdamGnn model(config, &rng);
  // Mirror the trainer's parameter order: link prediction checkpoints append
  // the decoder projection after the core model's tensors.
  nn::Linear projection(config.hidden_dim, config.hidden_dim,
                        /*use_bias=*/false, &rng);
  std::vector<autograd::Variable> params = model.Parameters();
  if (task == "lp") {
    for (auto& p : projection.Parameters()) params.push_back(p);
  }
  util::Status load_status = nn::LoadParameters(load, &params);
  if (!load_status.ok()) {
    std::fprintf(stderr, "%s\n", load_status.ToString().c_str());
    return 3;
  }

  serve::ServerOptions server_options;
  server_options.max_inflight = static_cast<size_t>(
      cli::IntFlagOr(flags, "max-inflight", "64"));
  server_options.max_retries =
      static_cast<int>(cli::IntFlagOr(flags, "max-retries", "1"));
  const long long batch_max = cli::IntFlagOr(flags, "batch-max", "1");
  const long long batch_wait_us = cli::IntFlagOr(flags, "batch-wait-us", "0");
  if (batch_max < 1 || batch_wait_us < 0) {
    std::fprintf(stderr, "--batch-max must be >= 1, --batch-wait-us >= 0\n");
    return 2;
  }
  server_options.batch_max = static_cast<size_t>(batch_max);
  server_options.batch_wait_us = batch_wait_us;
  serve::ResilientServer server(model, server_options);

  // Optional deterministic fault injection for resilience drills. Armed
  // AFTER server construction so the counted allocations are serving work,
  // not the weight snapshot.
  const int alloc_at = static_cast<int>(
      cli::IntFlagOr(flags, "inject-alloc-fault-at", "0"));
  const int alloc_count = static_cast<int>(
      cli::IntFlagOr(flags, "inject-alloc-fault-count", "1"));
  const int deadline_at = static_cast<int>(
      cli::IntFlagOr(flags, "inject-deadline-at-check", "0"));
  const int queue_delay_us = static_cast<int>(
      cli::IntFlagOr(flags, "inject-queue-delay-us", "0"));
  if (alloc_at > 0 || deadline_at > 0 || queue_delay_us > 0) {
    util::FaultPlan fault_plan;
    fault_plan.fail_alloc_at = alloc_at;
    fault_plan.fail_alloc_count = alloc_count;
    fault_plan.expire_deadline_at_check = deadline_at;
    fault_plan.queue_delay_us = queue_delay_us;
    util::FaultInjector::Instance().Arm(fault_plan);
  }

  serve::RequestOptions request;
  if (flags.count("timeout-ms") > 0) {
    request.timeout_s = cli::DoubleFlagOr(flags, "timeout-ms", "0") / 1e3;
    if (request.timeout_s < 0) {
      std::fprintf(stderr, "--timeout-ms must be >= 0\n");
      return 2;
    }
  }

  // Cold request: plan construction + the full pooling cascade.
  util::Stopwatch cold_watch;
  util::Result<serve::ServeResult> served = server.Serve(g, request);
  const double cold_ms = cold_watch.ElapsedSeconds() * 1e3;
  if (!served.ok()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 served.status().ToString().c_str());
    cli::DumpMetricsOrDie(flags);  // the drill legs inspect these
    return ExitCodeFor(served.status());
  }
  serve::ServeResult result = std::move(served).ValueOrDie();
  std::fprintf(stderr, "served mode=%s lambda=%d levels=%d attempts=%d\n",
               serve::ServeModeToString(result.mode), result.lambda_used,
               result.levels_used, result.attempts);

  const int repeat = static_cast<int>(cli::IntFlagOr(flags, "repeat", "0"));
  if (repeat > 0) {
    util::Stopwatch warm_watch;
    for (int i = 0; i < repeat; ++i) {
      util::Result<serve::ServeResult> warm = server.Serve(g, request);
      if (!warm.ok()) {
        std::fprintf(stderr, "warm serve failed: %s\n",
                     warm.status().ToString().c_str());
        cli::DumpMetricsOrDie(flags);
        return ExitCodeFor(warm.status());
      }
    }
    const double warm_ms = warm_watch.ElapsedSeconds() * 1e3 / repeat;
    std::fprintf(stderr, "cold request %.3f ms, warm request %.3f ms (x%d)\n",
                 cold_ms, warm_ms, repeat);
  } else {
    std::fprintf(stderr, "cold request %.3f ms\n", cold_ms);
  }

  // Concurrent fan-out over seed-variant graphs: N client threads hit the
  // server at once so the batching scheduler (--batch-max) has something to
  // fuse. The base graph's predictions above are untouched by this section.
  const int batch_graphs =
      static_cast<int>(cli::IntFlagOr(flags, "batch-graphs", "1"));
  if (batch_graphs > 1) {
    if (flags.count("edges") > 0) {
      std::fprintf(stderr,
                   "--batch-graphs needs --synthetic input (seed variants "
                   "of a file graph are not defined)\n");
      return 2;
    }
    const long long base_seed = cli::IntFlagOr(flags, "seed",
                                               cli::kDefaultSeed);
    std::vector<graph::Graph> variants;
    variants.reserve(static_cast<size_t>(batch_graphs) - 1);
    for (int i = 1; i < batch_graphs; ++i) {
      auto variant_flags = flags;
      variant_flags["seed"] = std::to_string(base_seed + i);
      auto variant = cli::LoadInput(variant_flags);
      if (!variant.ok()) {
        std::fprintf(stderr, "%s\n", variant.status().ToString().c_str());
        return 3;
      }
      variants.push_back(std::move(variant).ValueOrDie());
    }
    std::atomic<int> ok_count{0};
    std::atomic<int> degraded_count{0};
    std::mutex failure_mu;
    util::Status first_failure = util::Status::OK();
    util::Stopwatch fanout_watch;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(batch_graphs));
    for (int i = 0; i < batch_graphs; ++i) {
      const graph::Graph* target =
          i == 0 ? &g : &variants[static_cast<size_t>(i) - 1];
      clients.emplace_back([&, target]() {
        util::Result<serve::ServeResult> r = server.Serve(*target, request);
        if (!r.ok()) {
          std::lock_guard<std::mutex> lock(failure_mu);
          if (first_failure.ok()) first_failure = r.status();
          return;
        }
        ok_count.fetch_add(1);
        if (r.ValueOrDie().mode != serve::ServeMode::kFull) {
          degraded_count.fetch_add(1);
        }
      });
    }
    for (auto& t : clients) t.join();
    const double fanout_ms = fanout_watch.ElapsedSeconds() * 1e3;
    std::fprintf(stderr,
                 "batched fan-out: %d concurrent requests, ok=%d "
                 "(degraded=%d) in %.3f ms\n",
                 batch_graphs, ok_count.load(), degraded_count.load(),
                 fanout_ms);
    if (ok_count.load() < batch_graphs) {
      std::fprintf(stderr, "fan-out serve failed: %s\n",
                   first_failure.ToString().c_str());
      cli::DumpMetricsOrDie(flags);
      return ExitCodeFor(first_failure);
    }
  }

  const std::string output = FlagOr(flags, "output", "");
  std::FILE* out = stdout;
  if (!output.empty()) {
    out = std::fopen(output.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", output.c_str());
      return 1;
    }
  }

  if (task == "nc") {
    // Argmax over the served logits (degraded responses stay usable: the
    // shallow forward produces the same shape at lower fidelity).
    const tensor::Matrix& logits = result.logits;
    for (size_t i = 0; i < logits.rows(); ++i) {
      const double* row = logits.row(i);
      size_t best = 0;
      for (size_t c = 1; c < logits.cols(); ++c) {
        if (row[c] > row[best]) best = c;
      }
      std::fprintf(out, "%zu\t%d\n", i, static_cast<int>(best));
    }
  } else {
    // Decoder-space link scores for every edge of the input graph.
    tensor::Matrix h = nn::Linear::ForwardValues(
        result.embeddings, projection.weight().value(), tensor::Matrix());
    for (graph::NodeId u = 0; static_cast<size_t>(u) < g.num_nodes(); ++u) {
      for (graph::NodeId v : g.Neighbors(u)) {
        if (v < u) continue;  // each undirected edge once
        double s = 0.0;
        const double* a = h.row(static_cast<size_t>(u));
        const double* b = h.row(static_cast<size_t>(v));
        for (size_t j = 0; j < h.cols(); ++j) s += a[j] * b[j];
        std::fprintf(out, "%lld\t%lld\t%.17g\n", static_cast<long long>(u),
                     static_cast<long long>(v), s);
      }
    }
  }
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "predictions written to %s\n", output.c_str());
  }
  cli::DumpMetricsOrDie(flags);
  return 0;
}
