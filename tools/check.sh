#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite — once
# normally, once under ThreadSanitizer with the kernel pool forced to four
# threads, and once under AddressSanitizer — then smoke-test the trainer
# CLI with --threads=4 including a checkpoint/resume round trip.
#
# Usage: tools/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> normal build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "==> TSan build + ctest (ADAMGNN_NUM_THREADS=4)"
cmake -B build-tsan -S . -DADAMGNN_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ADAMGNN_NUM_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
    -j "${JOBS}"

echo "==> ASan build + ctest"
cmake -B build-asan -S . -DADAMGNN_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "==> trainer smoke test (--threads=4)"
./build/tools/adamgnn_train --task=nc --synthetic=cora --scale=0.1 \
    --epochs=5 --threads=4

echo "==> trainer checkpoint/resume smoke test"
CKPT="$(mktemp -u /tmp/adamgnn_smoke.XXXXXX.ckpt)"
./build/tools/adamgnn_train --task=nc --synthetic=cora --scale=0.1 \
    --epochs=3 --threads=4 --checkpoint="${CKPT}" --checkpoint-every=1
RESUME_OUT="$(./build/tools/adamgnn_train --task=nc --synthetic=cora \
    --scale=0.1 --epochs=6 --threads=4 --checkpoint="${CKPT}" --resume)"
echo "${RESUME_OUT}"
grep -q "resumed from epoch 3" <<<"${RESUME_OUT}"
rm -f "${CKPT}"

echo "==> train -> checkpoint -> infer parity smoke test (ASan)"
# Train, save frozen weights and the trainer's own eval predictions, then
# serve the checkpoint through adamgnn_infer; the tape-free session must
# reproduce the trainer's eval predictions byte for byte.
MODEL="$(mktemp -u /tmp/adamgnn_smoke.XXXXXX.model)"
TRAIN_PRED="$(mktemp -u /tmp/adamgnn_smoke.XXXXXX.train.tsv)"
INFER_PRED="$(mktemp -u /tmp/adamgnn_smoke.XXXXXX.infer.tsv)"
./build-asan/tools/adamgnn_train --task=nc --synthetic=cora --scale=0.1 \
    --seed=1 --epochs=5 --threads=4 --save="${MODEL}" \
    --dump-predictions="${TRAIN_PRED}"
./build-asan/tools/adamgnn_infer --task=nc --synthetic=cora --scale=0.1 \
    --seed=1 --threads=4 --load="${MODEL}" --output="${INFER_PRED}" \
    --repeat=3
diff "${TRAIN_PRED}" "${INFER_PRED}"
rm -f "${MODEL}" "${TRAIN_PRED}" "${INFER_PRED}"

echo "==> all checks passed"
