// Deterministic chaos soak for the serving stack: hot-swap registry +
// server lifecycle + resilient server, driven by a seeded action mix that
// interleaves traffic with injected faults. Usage:
//
//   chaos_soak --iters=200 --seed=7 [--dir=PATH] [--clients=2]
//
// Every iteration draws one action from a seeded RNG:
//
//   traffic burst        concurrent clients pin Current() and serve
//   reload under load    TryLoadVersion(good ckpt) races live traffic
//   bad reload           corrupt / torn / truncated / NaN-canary files must
//                        be rejected with the serving version untouched
//   rollback             Rollback() must restore the last-known-good
//                        version's outputs bitwise
//   deadline storm       FaultPlan::expire_deadline_at_check fires request
//                        deadlines at exact cooperative checkpoints
//   alloc window         FaultPlan::fail_alloc_at simulates allocation
//                        pressure across a counted window
//   watchdog drill       a tracked request past its hard bound must be
//                        cancelled by SweepNow()
//   drain cycle          BeginDrain → admission rejects Unavailable →
//                        WaitForDrain (with a mid-drain reload) → Reset →
//                        MarkReady, all in one process
//
// Invariants enforced (any break => nonzero exit):
//
//   1. no crash, no wedge: the process finishes all iterations;
//   2. every response is either (a) a full-mode result bitwise-identical to
//      the reference outputs of the version the client pinned, (b) an
//      explicitly-tagged degraded result, or (c) a taxonomy error
//      (DeadlineExceeded / ResourceExhausted / Unavailable / Cancelled) —
//      never Internal, never a blend of two versions;
//   3. a rejected reload leaves Current() untouched (same fingerprint,
//      still serving bitwise-correct results);
//   4. Rollback() restores bitwise-identical outputs;
//   5. a tracked request past its watchdog hard bound is cancelled by the
//      next sweep — nothing stays stuck.
//
// The action SEQUENCE is fully deterministic from --seed. Thread
// interleaving within a burst is not (which request lands on which version
// during a swap), but every invariant above is scheduling-independent:
// each response is validated against the version its client pinned.

#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/adamgnn_model.h"
#include "core/graph_plan.h"
#include "core/inference_session.h"
#include "data/node_datasets.h"
#include "graph/graph.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/lifecycle.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "tensor/matrix.h"
#include "tools/cli_common.h"
#include "util/cancel.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/status.h"

namespace {

using adamgnn::cli::DoubleFlagOr;
using adamgnn::cli::FlagMap;
using adamgnn::cli::FlagOr;
using adamgnn::cli::FlagSpec;
using adamgnn::cli::IntFlagOr;

std::vector<FlagSpec> Specs() {
  return {
      {"help", "print this help and exit"},
      {"iters", "soak iterations (default 200)"},
      {"seed", "RNG seed driving the action mix (default 1)"},
      {"dir", "scratch directory for checkpoint files (default "
              "\"chaos_soak.tmp\", created files are removed on exit)"},
      {"clients", "concurrent client threads per traffic burst (default 2)"},
      {"scale", "synthetic catalog graph scale (default 0.05)"},
      {"print-config", "print resolved run config as one JSON line and exit"},
      {"threads", "kernel thread-pool size (default: hardware)"},
  };
}

// ---- failure collection ------------------------------------------------

class SoakState {
 public:
  void Fail(const std::string& what) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failures_;
    std::fprintf(stderr, "chaos-soak: INVARIANT BREAK: %s\n", what.c_str());
  }
  int failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }

 private:
  mutable std::mutex mu_;
  int failures_ = 0;
};

bool BitwiseEqual(const adamgnn::tensor::Matrix& a,
                  const adamgnn::tensor::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

// ---- checkpoint fixtures -----------------------------------------------

adamgnn::util::Status WriteBytes(const std::string& path,
                                 const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return adamgnn::util::Status::Internal("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return adamgnn::util::Status::Internal("short write: " + path);
  }
  return adamgnn::util::Status::OK();
}

adamgnn::util::Result<std::string> ReadBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return adamgnn::util::Status::NotFound("cannot open: " + path);
  }
  std::string bytes;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

/// A good checkpoint is just a freshly initialized model at `init_seed`
/// saved through the real v2 writer — valid weights, distinct per seed.
adamgnn::util::Status MakeGoodCheckpoint(
    const adamgnn::core::AdamGnnConfig& config, uint64_t init_seed,
    const std::string& path) {
  adamgnn::util::Rng rng(init_seed);
  adamgnn::core::AdamGnn model(config, &rng);
  return adamgnn::nn::SaveParameters(model.Parameters(), path);
}

/// NaN-poisoned weights: structurally a perfect checkpoint, but the canary
/// forward produces non-finite outputs, so the gate must reject it.
adamgnn::util::Status MakeNanCheckpoint(
    const adamgnn::core::AdamGnnConfig& config, uint64_t init_seed,
    const std::string& path) {
  adamgnn::util::Rng rng(init_seed);
  adamgnn::core::AdamGnn model(config, &rng);
  std::vector<adamgnn::autograd::Variable> params = model.Parameters();
  // Poison every tensor wholesale: a single poisoned element can land in a
  // weight the forward never touches (an unselected ego's attention row),
  // which would make this a legitimately loadable checkpoint.
  for (adamgnn::autograd::Variable& p : params) {
    adamgnn::tensor::Matrix& value = p.mutable_value();
    const size_t n = value.rows() * value.cols();
    for (size_t i = 0; i < n; ++i) {
      value.data()[i] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return adamgnn::nn::SaveParameters(params, path);
}

/// Derives the corrupt-file fixtures from a good checkpoint, using
/// InspectCheckpoint for the section geometry instead of hardcoded offsets.
adamgnn::util::Status MakeBadCheckpoints(const std::string& good_path,
                                         const std::string& dir,
                                         std::vector<std::string>* bad_paths) {
  ADAMGNN_ASSIGN_OR_RETURN(std::string bytes, ReadBytes(good_path));
  ADAMGNN_ASSIGN_OR_RETURN(adamgnn::nn::CheckpointInfo info,
                           adamgnn::nn::InspectCheckpoint(good_path));
  if (info.section_payload_sizes.empty()) {
    return adamgnn::util::Status::Internal("good checkpoint has no sections");
  }
  // Header (8) + section frame header (4 + 8): flip a byte in the middle of
  // the first section payload => CRC mismatch.
  const size_t payload_start = 8 + 4 + 8;
  const size_t flip_at = payload_start + info.section_payload_sizes[0] / 2;
  std::string corrupt = bytes;
  corrupt[flip_at] = static_cast<char>(corrupt[flip_at] ^ 0x5a);
  ADAMGNN_RETURN_NOT_OK(WriteBytes(dir + "/corrupt.ckpt", corrupt));
  bad_paths->push_back(dir + "/corrupt.ckpt");

  // Torn mid-payload: the section frame promises more bytes than exist.
  ADAMGNN_RETURN_NOT_OK(
      WriteBytes(dir + "/truncated.ckpt", bytes.substr(0, flip_at)));
  bad_paths->push_back(dir + "/truncated.ckpt");

  // Torn mid-header.
  ADAMGNN_RETURN_NOT_OK(WriteBytes(dir + "/torn.ckpt", bytes.substr(0, 6)));
  bad_paths->push_back(dir + "/torn.ckpt");

  // Wrong magic entirely.
  ADAMGNN_RETURN_NOT_OK(
      WriteBytes(dir + "/garbage.ckpt", "this is not a checkpoint\n"));
  bad_paths->push_back(dir + "/garbage.ckpt");

  // A path that does not exist.
  bad_paths->push_back(dir + "/missing.ckpt");
  return adamgnn::util::Status::OK();
}

// ---- reference outputs --------------------------------------------------

struct Reference {
  adamgnn::tensor::Matrix embeddings;
  adamgnn::tensor::Matrix logits;
};

/// Loads `path` exactly the way the registry does (scratch model at
/// scratch_seed, v2 loader) and runs a standalone frozen session over every
/// catalog plan. Full-mode server responses from the version published off
/// this file must match these matrices bitwise.
adamgnn::util::Result<uint64_t> ComputeReferences(
    const adamgnn::core::AdamGnnConfig& config, uint64_t scratch_seed,
    const std::string& path,
    const std::vector<std::shared_ptr<const adamgnn::core::GraphPlan>>& plans,
    std::map<uint64_t, std::vector<Reference>>* refs_by_fingerprint) {
  adamgnn::util::Rng rng(scratch_seed);
  adamgnn::core::AdamGnn model(config, &rng);
  std::vector<adamgnn::autograd::Variable> params = model.Parameters();
  ADAMGNN_RETURN_NOT_OK(adamgnn::nn::LoadParameters(path, &params));
  adamgnn::core::InferenceSession session(model);
  std::vector<Reference> refs;
  for (const auto& plan : plans) {
    const adamgnn::core::InferenceSession::Result* out = nullptr;
    ADAMGNN_RETURN_NOT_OK(session.TryRun(plan, &out));
    refs.push_back(Reference{out->embeddings, out->logits});
  }
  const uint64_t fp = session.WeightsFingerprint();
  (*refs_by_fingerprint)[fp] = std::move(refs);
  return fp;
}

// ---- traffic ------------------------------------------------------------

struct SoakEnv {
  std::vector<adamgnn::graph::Graph> graphs;
  std::map<uint64_t, std::vector<Reference>> refs;  // fingerprint -> per-graph
  adamgnn::serve::ServerLifecycle* lifecycle = nullptr;
  adamgnn::serve::ModelRegistry* registry = nullptr;
  SoakState* state = nullptr;
  std::atomic<long long> answered{0};
  std::atomic<long long> full{0};
  std::atomic<long long> degraded{0};
  std::atomic<long long> shed{0};
};

bool IsTaxonomyError(const adamgnn::util::Status& s) {
  switch (s.code()) {
    case adamgnn::util::StatusCode::kDeadlineExceeded:
    case adamgnn::util::StatusCode::kResourceExhausted:
    case adamgnn::util::StatusCode::kUnavailable:
    case adamgnn::util::StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

/// One client's burst: pin Current(), serve, validate. Returns the number
/// of FULL-mode responses (callers that need a full response loop on this).
long long ServeBurst(SoakEnv* env, uint64_t seed, int requests,
                     double timeout_s) {
  adamgnn::util::Rng rng(seed);
  long long full_here = 0;
  for (int i = 0; i < requests; ++i) {
    const size_t graph_idx = static_cast<size_t>(
        rng.NextUint64(static_cast<uint64_t>(env->graphs.size())));
    std::shared_ptr<adamgnn::serve::ModelVersion> version =
        env->registry->Current();
    if (version == nullptr) {
      env->state->Fail("no published version during traffic");
      return full_here;
    }
    adamgnn::serve::RequestOptions request;
    request.timeout_s = timeout_s;
    adamgnn::util::Result<adamgnn::serve::ServeResult> served =
        version->server().Serve(env->graphs[graph_idx], request);
    if (!served.ok()) {
      if (!IsTaxonomyError(served.status())) {
        env->state->Fail("non-taxonomy serve error: " +
                         served.status().ToString());
      } else {
        env->shed.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    env->answered.fetch_add(1, std::memory_order_relaxed);
    const adamgnn::serve::ServeResult& result = served.ValueOrDie();
    if (result.mode != adamgnn::serve::ServeMode::kFull) {
      env->degraded.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ++full_here;
    env->full.fetch_add(1, std::memory_order_relaxed);
    auto it = env->refs.find(version->weights_fingerprint());
    if (it == env->refs.end()) {
      char fp_hex[32];
      std::snprintf(fp_hex, sizeof(fp_hex), "%016" PRIx64,
                    version->weights_fingerprint());
      env->state->Fail("response from unknown version fingerprint " +
                       std::string(fp_hex) + " (version " +
                       std::to_string(version->id()) + " from " +
                       version->source_path() + ")");
      continue;
    }
    const Reference& ref = it->second[graph_idx];
    if (!BitwiseEqual(result.embeddings, ref.embeddings) ||
        !BitwiseEqual(result.logits, ref.logits)) {
      env->state->Fail(
          "full-mode response does not match pinned version " +
          std::to_string(version->id()) +
          " bitwise (old/new blend or corrupted hot-swap)");
    }
  }
  return full_here;
}

void ParallelBurst(SoakEnv* env, uint64_t seed, int clients,
                   int requests_per_client, double timeout_s) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([env, seed, c, requests_per_client, timeout_s] {
      ServeBurst(env, seed * 1000003u + static_cast<uint64_t>(c),
                 requests_per_client, timeout_s);
    });
  }
  for (std::thread& t : threads) t.join();
}

/// Serves until a FULL-mode (bitwise-validated) response is produced —
/// bounded, because faults are disarmed and the breaker's cooldown is
/// request-counted. Used after rollback / bad-reload checks, where "still
/// serving the right bits" is the invariant.
void RequireFullResponse(SoakEnv* env, uint64_t seed, const char* why) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (ServeBurst(env, seed + static_cast<uint64_t>(attempt), 1, -1.0) > 0) {
      return;
    }
  }
  env->state->Fail(std::string("could not obtain a full-mode response (") +
                   why + ")");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adamgnn;  // NOLINT

  const std::vector<FlagSpec> specs = Specs();
  const FlagMap flags = cli::ParseFlags(argc, argv, cli::FlagNames(specs));
  if (flags.count("help") > 0) {
    std::printf("chaos_soak: deterministic fault-injection soak for the "
                "serving stack\n\nusage:\n  chaos_soak --iters=200 --seed=7 "
                "[--dir=PATH] [--clients=2]\n\nexit codes: 0 all invariants "
                "held, 1 invariant break or setup failure,\n2 bad flags\n\n"
                "flags:\n");
    cli::PrintFlagHelp(specs);
    return 0;
  }
  cli::ConfigureThreadsOrDie(flags);

  const long long iters = IntFlagOr(flags, "iters", "200");
  const uint64_t seed =
      static_cast<uint64_t>(IntFlagOr(flags, "seed", cli::kDefaultSeed));
  const std::string dir = FlagOr(flags, "dir", "chaos_soak.tmp");
  const int clients = static_cast<int>(IntFlagOr(flags, "clients", "2"));
  const double scale = DoubleFlagOr(flags, "scale", "0.05");
  if (iters < 1 || clients < 1 || scale <= 0.0) {
    std::fprintf(stderr, "--iters/--clients/--scale must be positive\n");
    return 2;
  }
  if (flags.count("print-config") > 0) {
    cli::PrintEffectiveConfig(
        "chaos_soak", {{"iters", std::to_string(iters)},
                       {"seed", std::to_string(seed)},
                       {"clients", std::to_string(clients)},
                       {"scale", std::to_string(scale)},
                       {"dir", cli::JsonQuote(dir)}});
    return 0;
  }

  // The scratch dir must exist; create it with stdio-free mkdir via fopen
  // probing is not possible, so shell out to the C library's mkdir.
  std::string mkdir_cmd = "mkdir -p '" + dir + "'";
  if (std::system(mkdir_cmd.c_str()) != 0) {
    std::fprintf(stderr, "chaos-soak: cannot create --dir=%s\n", dir.c_str());
    return 1;
  }

  // ---- catalog: three seed-variants of a small synthetic graph ----------
  std::vector<graph::Graph> graphs;
  for (uint64_t s = 0; s < 3; ++s) {
    util::Result<data::NodeDataset> d =
        data::MakeNodeDataset(data::NodeDatasetId::kCora, seed + s, scale);
    if (!d.ok()) {
      std::fprintf(stderr, "chaos-soak: dataset: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(std::move(d.ValueOrDie().graph));
  }
  for (const graph::Graph& g : graphs) {
    if (g.feature_dim() != graphs[0].feature_dim()) {
      std::fprintf(stderr, "chaos-soak: catalog feature dims diverge\n");
      return 1;
    }
  }

  core::AdamGnnConfig config;
  config.in_dim = graphs[0].feature_dim();
  config.hidden_dim = 16;
  config.num_classes = static_cast<size_t>(graphs[0].num_classes());
  config.num_levels = 2;
  config.lambda = 1;

  // ---- checkpoint fixtures + per-version references --------------------
  const uint64_t scratch_seed = seed + 977;
  std::vector<std::string> good_paths;
  std::vector<std::string> cleanup_paths;
  std::vector<std::shared_ptr<const core::GraphPlan>> plans;
  for (const graph::Graph& g : graphs) {
    util::Result<std::shared_ptr<const core::GraphPlan>> plan =
        core::GraphPlan::TryBuild(g, config.lambda);
    if (!plan.ok()) {
      std::fprintf(stderr, "chaos-soak: plan: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    plans.push_back(plan.ValueOrDie());
  }
  std::map<uint64_t, std::vector<Reference>> refs;
  std::vector<uint64_t> good_fingerprints;
  for (uint64_t v = 0; v < 3; ++v) {
    const std::string path = dir + "/good" + std::to_string(v) + ".ckpt";
    util::Status st = MakeGoodCheckpoint(config, seed + 101 * (v + 1), path);
    if (st.ok()) {
      util::Result<uint64_t> fp =
          ComputeReferences(config, scratch_seed, path, plans, &refs);
      if (!fp.ok()) st = fp.status();
      if (fp.ok()) good_fingerprints.push_back(fp.ValueOrDie());
    }
    if (!st.ok()) {
      std::fprintf(stderr, "chaos-soak: fixture %s: %s\n", path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    good_paths.push_back(path);
    cleanup_paths.push_back(path);
  }
  std::vector<std::string> bad_paths;
  {
    util::Status st = MakeNanCheckpoint(config, seed + 31337,
                                        dir + "/canary_nan.ckpt");
    if (st.ok()) {
      bad_paths.push_back(dir + "/canary_nan.ckpt");
      st = MakeBadCheckpoints(good_paths[0], dir, &bad_paths);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "chaos-soak: bad fixtures: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& p : bad_paths) cleanup_paths.push_back(p);

  // ---- serving stack ----------------------------------------------------
  serve::LifecycleOptions lifecycle_options;
  lifecycle_options.drain_timeout_s = 2.0;
  lifecycle_options.watchdog_factor = 4.0;
  lifecycle_options.watchdog_poll_s = 0.001;
  serve::ServerLifecycle lifecycle(lifecycle_options);

  serve::ServerOptions server_options;
  server_options.max_inflight = 16;
  server_options.max_retries = 1;
  server_options.allow_degraded = true;
  server_options.lifecycle = &lifecycle;

  serve::ModelRegistryOptions registry_options;
  registry_options.config = config;
  registry_options.server = server_options;
  registry_options.scratch_seed = scratch_seed;
  // Freshly initialized models diverge arbitrarily from each other, so the
  // divergence gate stays off; the NaN and shape gates (the crash-safety
  // ones) always run.
  registry_options.canary_tolerance = -1.0;
  serve::ModelRegistry registry(registry_options, graphs[0]);

  SoakState state;
  SoakEnv env;
  env.graphs = graphs;
  env.refs = refs;
  env.lifecycle = &lifecycle;
  env.registry = &registry;
  env.state = &state;

  {
    util::Result<std::shared_ptr<serve::ModelVersion>> first =
        registry.TryLoadVersion(good_paths[0]);
    if (!first.ok()) {
      std::fprintf(stderr, "chaos-soak: initial load: %s\n",
                   first.status().ToString().c_str());
      return 1;
    }
  }
  lifecycle.MarkReady();
  lifecycle.StartWatchdog();

  std::fprintf(stderr,
               "chaos-soak: start iters=%lld seed=%" PRIu64
               " clients=%d versions=3 graphs=%zu\n",
               iters, seed, clients, graphs.size());

  // ---- the soak loop ----------------------------------------------------
  util::Rng rng(seed * 2654435761u + 1);
  long long actions[8] = {};
  for (long long iter = 0; iter < iters; ++iter) {
    const uint64_t roll = rng.NextUint64(100);
    const uint64_t burst_seed = rng.Next();
    if (roll < 40) {
      // Plain traffic burst.
      ++actions[0];
      ParallelBurst(&env, burst_seed, clients, 6, -1.0);
    } else if (roll < 55) {
      // Good reload racing live traffic: responses must stay old-or-new.
      ++actions[1];
      std::thread traffic(
          [&env, burst_seed, clients] {
            ParallelBurst(&env, burst_seed, clients, 6, -1.0);
          });
      const std::string& path = good_paths[static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(good_paths.size())))];
      util::Result<std::shared_ptr<serve::ModelVersion>> loaded =
          registry.TryLoadVersion(path);
      if (!loaded.ok()) {
        state.Fail("good reload rejected: " + loaded.status().ToString());
      }
      traffic.join();
    } else if (roll < 65) {
      // Bad reload: rejected, current untouched, still serving right bits.
      ++actions[2];
      std::shared_ptr<serve::ModelVersion> before = registry.Current();
      const std::string& path = bad_paths[static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(bad_paths.size())))];
      util::Result<std::shared_ptr<serve::ModelVersion>> loaded =
          registry.TryLoadVersion(path);
      if (loaded.ok()) {
        state.Fail("bad checkpoint " + path + " was accepted");
      }
      std::shared_ptr<serve::ModelVersion> after = registry.Current();
      if (before->id() != after->id() ||
          before->weights_fingerprint() != after->weights_fingerprint()) {
        state.Fail("rejected reload displaced the serving version");
      }
      RequireFullResponse(&env, burst_seed, "after rejected reload");
    } else if (roll < 75) {
      // Rollback restores the last-known-good version bitwise.
      ++actions[3];
      std::shared_ptr<serve::ModelVersion> previous = registry.Previous();
      util::Status st = registry.Rollback();
      if (previous == nullptr) {
        if (st.ok()) state.Fail("Rollback succeeded with no previous");
      } else if (!st.ok()) {
        state.Fail("Rollback failed: " + st.ToString());
      } else {
        std::shared_ptr<serve::ModelVersion> now = registry.Current();
        if (now->id() != previous->id() ||
            now->weights_fingerprint() != previous->weights_fingerprint()) {
          state.Fail("Rollback did not restore last-known-good");
        }
        RequireFullResponse(&env, burst_seed, "after rollback");
      }
    } else if (roll < 85) {
      // Deadline storm: the injected clock expires request deadlines at an
      // exact cooperative checkpoint.
      ++actions[4];
      const int at = static_cast<int>(1 + rng.NextUint64(32));
      {
        util::FaultPlan plan;
        plan.expire_deadline_at_check = at;
        util::ScopedFaultPlan armed(plan);
        ParallelBurst(&env, burst_seed, clients, 4, 30.0);
      }
    } else if (roll < 92) {
      // Allocation-pressure window.
      ++actions[5];
      util::FaultPlan plan;
      plan.fail_alloc_at = static_cast<int>(1 + rng.NextUint64(16));
      plan.fail_alloc_count = static_cast<int>(1 + rng.NextUint64(8));
      util::ScopedFaultPlan armed(plan);
      ParallelBurst(&env, burst_seed, clients, 4, -1.0);
    } else if (roll < 96) {
      // Watchdog drill: a tracked request past its hard bound must be
      // cancelled by the next sweep — nothing can stay stuck.
      ++actions[6];
      serve::InflightGuard guard = lifecycle.Track(1e-9);
      util::CancelToken token = util::CancelToken::Cancellable();
      guard.BindToken(token);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      lifecycle.SweepNow();
      if (!token.cancelled()) {
        state.Fail("watchdog sweep left an over-bound request running");
      }
    } else {
      // Drain cycle with a mid-drain reload, then back to Ready.
      ++actions[7];
      lifecycle.BeginDrain();
      std::shared_ptr<serve::ModelVersion> version = registry.Current();
      util::Result<serve::ServeResult> rejected =
          version->server().Serve(env.graphs[0], {});
      if (rejected.ok() ||
          rejected.status().code() != util::StatusCode::kUnavailable) {
        state.Fail("admission during drain was not Unavailable");
      }
      // A reload while draining must not wedge or corrupt the registry.
      util::Result<std::shared_ptr<serve::ModelVersion>> mid =
          registry.TryLoadVersion(good_paths[static_cast<size_t>(
              rng.NextUint64(static_cast<uint64_t>(good_paths.size())))]);
      if (!mid.ok()) {
        state.Fail("mid-drain reload rejected: " + mid.status().ToString());
      }
      if (!lifecycle.WaitForDrain()) {
        state.Fail("drain cancelled stragglers with no traffic in flight");
      }
      lifecycle.MarkStopped();
      lifecycle.Reset();
      lifecycle.MarkReady();
      if (lifecycle.state() != serve::LifecycleState::kReady) {
        state.Fail("lifecycle did not return to Ready after drain cycle");
      }
      RequireFullResponse(&env, burst_seed, "after drain cycle");
    }
  }

  // ---- teardown: one clean final drain ----------------------------------
  lifecycle.BeginDrain();
  if (!lifecycle.WaitForDrain()) {
    state.Fail("final drain cancelled stragglers");
  }
  lifecycle.StopWatchdog();
  lifecycle.MarkStopped();

  for (const std::string& p : cleanup_paths) std::remove(p.c_str());

  std::fprintf(stderr,
               "chaos-soak: done iters=%lld answered=%lld full=%lld "
               "degraded=%lld shed=%lld versions=%zu failures=%d\n",
               iters, env.answered.load(), env.full.load(),
               env.degraded.load(), env.shed.load(), registry.num_versions(),
               state.failures());
  std::fprintf(stderr,
               "chaos-soak: actions traffic=%lld reload=%lld bad_reload=%lld "
               "rollback=%lld deadline=%lld alloc=%lld watchdog=%lld "
               "drain=%lld\n",
               actions[0], actions[1], actions[2], actions[3], actions[4],
               actions[5], actions[6], actions[7]);
  return state.failures() == 0 ? 0 : 1;
}
