// Shared flag-parsing and input-loading helpers for the adamgnn_* CLIs.
//
// adamgnn_train and adamgnn_infer used to carry private copies of
// ParseFlags/FlagOr/LoadInput, so their defaults (hidden width, level count,
// seed, synthetic scale) could drift apart silently, and both parsed numeric
// flags with atoi/atof — which turn `--epochs=abc` into 0 and train nothing.
// Everything here parses strictly (util::ParseInt/ParseDouble) and exits 2
// with the offending flag and value on any malformed input.
//
// Header-only on purpose: two small binaries, no third library target.

#ifndef ADAMGNN_TOOLS_CLI_COMMON_H_
#define ADAMGNN_TOOLS_CLI_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "data/node_datasets.h"
#include "graph/io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "tensor/isa.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace adamgnn::cli {

// Model/dataset defaults shared by both CLIs. adamgnn_infer must rebuild the
// exact model shape adamgnn_train produced, so these MUST stay one copy.
inline constexpr const char* kDefaultHidden = "64";
inline constexpr const char* kDefaultLevels = "3";
inline constexpr const char* kDefaultSeed = "1";
inline constexpr const char* kDefaultScale = "0.2";

using FlagMap = std::map<std::string, std::string>;

/// One CLI flag: its name and the --help text. Each CLI declares a single
/// FlagSpec table and derives BOTH the known-flag set (for strict parsing)
/// and the --help listing from it, so a flag cannot exist without help text,
/// appear twice, or be documented but unparseable.
struct FlagSpec {
  const char* name;  ///< without the leading "--"
  const char* help;  ///< one or more lines; each is indented under the flag
};

/// The known-flag set for ParseFlags, derived from the spec table. A
/// duplicate name in the table is a programming error: exit 2 loudly (this
/// runs before any parsing, so the mistake cannot ship silently).
inline std::set<std::string> FlagNames(const std::vector<FlagSpec>& specs) {
  std::set<std::string> names;
  for (const FlagSpec& spec : specs) {
    if (!names.insert(spec.name).second) {
      std::fprintf(stderr, "duplicate flag spec: --%s\n", spec.name);
      std::exit(2);
    }
  }
  return names;
}

/// Prints every flag exactly once, in table order: `  --name` followed by
/// the indented help lines (the help string may contain '\n').
inline void PrintFlagHelp(const std::vector<FlagSpec>& specs) {
  for (const FlagSpec& spec : specs) {
    std::printf("  --%s\n", spec.name);
    const std::string help = spec.help;
    size_t start = 0;
    while (start <= help.size()) {
      const size_t end = help.find('\n', start);
      const std::string line =
          help.substr(start, end == std::string::npos ? end : end - start);
      if (!line.empty()) std::printf("      %s\n", line.c_str());
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }
}

/// Minimal JSON string escaping for PrintEffectiveConfig values.
inline std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

/// Prints the resolved effective configuration as ONE JSON line on stdout:
/// the shared process state (threads, ISA, observability) plus the
/// tool-specific entries in `extras` (values must already be JSON — use
/// JsonQuote for strings). Call AFTER ConfigureThreadsOrDie /
/// ConfigureIsaOrDie so the printed values are what the run would use.
inline void PrintEffectiveConfig(
    const std::string& tool,
    const std::vector<std::pair<std::string, std::string>>& extras) {
  std::string line = "{\"tool\":" + JsonQuote(tool);
  line += ",\"threads\":" + std::to_string(util::NumThreads());
  line += ",\"effective_parallelism\":" +
          std::to_string(util::EffectiveParallelism());
  line += ",\"isa\":" + JsonQuote(tensor::IsaName(tensor::ActiveIsa()));
  line += ",\"best_isa\":" +
          JsonQuote(tensor::IsaName(tensor::BestSupportedIsa()));
  line += std::string(",\"obs_compiled\":") +
          (obs::Compiled() ? "true" : "false");
  line += std::string(",\"obs_enabled\":") +
          (obs::Enabled() ? "true" : "false");
  for (const auto& [key, value] : extras) {
    line += "," + JsonQuote(key) + ":" + value;
  }
  line += "}";
  std::printf("%s\n", line.c_str());
}

/// Parses --name / --name=value arguments. Anything not in `known` —
/// including a typo like --epoch=5 — is rejected instead of ignored.
inline FlagMap ParseFlags(int argc, char** argv,
                          const std::set<std::string>& known) {
  FlagMap flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    std::string name = eq == std::string::npos ? arg : arg.substr(0, eq);
    if (known.count(name) == 0) {
      std::fprintf(stderr,
                   "unknown flag: --%s (run with --help for the flag list)\n",
                   name.c_str());
      std::exit(2);
    }
    if (eq == std::string::npos) {
      flags[std::move(name)] = "true";
    } else {
      flags[std::move(name)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

inline std::string FlagOr(const FlagMap& flags, const std::string& key,
                          const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

/// Integer flag with strict parsing: `--epochs=abc` (or `--epochs=12abc`,
/// or an out-of-range value) prints the flag, the bad value, and the parse
/// error, then exits 2. `fallback` must itself be parseable.
inline long long IntFlagOr(const FlagMap& flags, const std::string& key,
                           const std::string& fallback) {
  const std::string raw = FlagOr(flags, key, fallback);
  const util::Result<int64_t> parsed = util::ParseInt(raw);
  if (!parsed.ok()) {
    std::fprintf(stderr, "invalid value for --%s: \"%s\" (%s)\n", key.c_str(),
                 raw.c_str(), parsed.status().message().c_str());
    std::exit(2);
  }
  return parsed.ValueOrDie();
}

/// Floating-point flag with the same strict contract as IntFlagOr.
inline double DoubleFlagOr(const FlagMap& flags, const std::string& key,
                           const std::string& fallback) {
  const std::string raw = FlagOr(flags, key, fallback);
  const util::Result<double> parsed = util::ParseDouble(raw);
  if (!parsed.ok()) {
    std::fprintf(stderr, "invalid value for --%s: \"%s\" (%s)\n", key.c_str(),
                 raw.c_str(), parsed.status().message().c_str());
    std::exit(2);
  }
  return parsed.ValueOrDie();
}

/// Applies --threads=N (strictly parsed, must be >= 1) to the kernel pool.
inline void ConfigureThreadsOrDie(const FlagMap& flags) {
  if (flags.count("threads") == 0) return;
  const long long n = IntFlagOr(flags, "threads", "1");
  if (n < 1) {
    std::fprintf(stderr, "--threads must be >= 1, got %lld\n", n);
    std::exit(2);
  }
  util::SetNumThreads(static_cast<int>(n));
}

/// Applies --isa=scalar|sse2|avx2 to the kernel dispatcher. Unlike the
/// ADAMGNN_ISA environment override (which warns and falls back), an
/// explicit flag naming an ISA this CPU cannot run is an error: exit 2.
inline void ConfigureIsaOrDie(const FlagMap& flags) {
  if (flags.count("isa") == 0) return;
  const std::string name = FlagOr(flags, "isa", "");
  tensor::Isa isa;
  if (!tensor::ParseIsa(name, &isa)) {
    std::fprintf(stderr, "--isa must be scalar|sse2|avx2, got \"%s\"\n",
                 name.c_str());
    std::exit(2);
  }
  if (!tensor::SetIsa(isa)) {
    std::fprintf(stderr, "--isa=%s is not supported on this CPU (best: %s)\n",
                 name.c_str(), tensor::IsaName(tensor::BestSupportedIsa()));
    std::exit(2);
  }
}

inline util::Result<graph::Graph> LoadInputUnvalidated(const FlagMap& flags);

/// Loads the input graph: --synthetic=NAME [--scale=S] or --edges=F
/// [--features=F] [--labels=F]. Identical semantics in both CLIs. Every
/// loaded graph passes graph::ValidateGraph before it is returned — this is
/// the single trust boundary for on-disk inputs, so a corrupt file fails
/// here with InvalidArgument instead of as NaN embeddings mid-forward.
inline util::Result<graph::Graph> LoadInput(const FlagMap& flags) {
  ADAMGNN_ASSIGN_OR_RETURN(graph::Graph g, LoadInputUnvalidated(flags));
  ADAMGNN_RETURN_NOT_OK(graph::ValidateGraph(g));
  return g;
}

inline util::Result<graph::Graph> LoadInputUnvalidated(const FlagMap& flags) {
  const std::string synthetic = FlagOr(flags, "synthetic", "");
  if (!synthetic.empty()) {
    const double scale = DoubleFlagOr(flags, "scale", kDefaultScale);
    const std::map<std::string, data::NodeDatasetId> kByName = {
        {"acm", data::NodeDatasetId::kAcm},
        {"citeseer", data::NodeDatasetId::kCiteseer},
        {"cora", data::NodeDatasetId::kCora},
        {"emails", data::NodeDatasetId::kEmails},
        {"dblp", data::NodeDatasetId::kDblp},
        {"wiki", data::NodeDatasetId::kWiki},
    };
    auto it = kByName.find(synthetic);
    if (it == kByName.end()) {
      return util::Status::InvalidArgument("unknown synthetic dataset: " +
                                           synthetic);
    }
    ADAMGNN_ASSIGN_OR_RETURN(
        data::NodeDataset d,
        data::MakeNodeDataset(
            it->second,
            static_cast<uint64_t>(IntFlagOr(flags, "seed", kDefaultSeed)),
            scale));
    return std::move(d.graph);
  }
  const std::string edges = FlagOr(flags, "edges", "");
  if (edges.empty()) {
    return util::Status::InvalidArgument(
        "either --edges or --synthetic is required");
  }
  return graph::ReadGraph(edges, FlagOr(flags, "features", ""),
                          FlagOr(flags, "labels", ""));
}

/// Writes the process's metrics + trace spans as JSONL to the path from
/// --metrics-out, or from ADAMGNN_METRICS when the flag is absent ("-" means
/// stdout). No-op when neither is set. Call once, at the end of the run.
inline void DumpMetricsOrDie(const FlagMap& flags) {
  std::string path = FlagOr(flags, "metrics-out", "");
  if (path.empty()) path = obs::MetricsPathFromEnv();
  if (path.empty()) return;
  const util::Status st = obs::WriteMetricsJsonl(path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(1);
  }
  if (path != "-") {
    std::fprintf(stderr, "metrics written to %s\n", path.c_str());
  }
}

}  // namespace adamgnn::cli

#endif  // ADAMGNN_TOOLS_CLI_COMMON_H_
