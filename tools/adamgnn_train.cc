// adamgnn_train — command-line trainer for AdamGNN on user-provided graphs.
//
// Usage:
//   adamgnn_train --task=nc --edges=g.txt --features=x.txt --labels=y.txt
//                 [--levels=3] [--hidden=64] [--epochs=200] [--lr=0.01]
//                 [--seed=1] [--threads=N] [--save=model.ckpt]
//                 [--checkpoint=run.ckpt] [--checkpoint-every=10] [--resume]
//   adamgnn_train --task=lp --edges=g.txt --features=x.txt [...]
//   adamgnn_train --task=nc --synthetic=cora [--scale=0.2] [...]
//
// Node classification reports test accuracy, macro-F1 and the confusion
// matrix; link prediction reports ROC-AUC. `--save` writes a checkpoint
// loadable with nn::LoadParameters. `--checkpoint` makes the run crash-safe:
// a resumable checkpoint (parameters + optimizer + RNG + bookkeeping) is
// written atomically every --checkpoint-every epochs and at the end;
// `--resume` continues an interrupted run bitwise-identically.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "autograd/loss_ops.h"
#include "core/adapters.h"
#include "data/splits.h"
#include "nn/serialize.h"
#include "tools/cli_common.h"
#include "train/evaluation.h"
#include "train/link_trainer.h"
#include "train/node_trainer.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace {

using namespace adamgnn;  // CLI tool; library code never does this
using cli::FlagOr;

// Single source of truth for the tool's flag surface: the known-flag set
// (strict parsing — a typo like --epoch=5 is rejected, not ignored) and the
// --help listing are both derived from this table, so every flag is
// documented exactly once.
const std::vector<cli::FlagSpec>& Specs() {
  static const std::vector<cli::FlagSpec>* kSpecs =
      new std::vector<cli::FlagSpec>{
          {"help", "print this flag list and exit"},
          {"task", "nc (node classification, default) or lp (link "
                   "prediction)"},
          {"edges", "edge-list input file (one `u v [w]` line per edge)"},
          {"features", "node-feature file for --edges input"},
          {"labels", "node-label file for --edges input (required for nc)"},
          {"synthetic", "built-in dataset: acm|citeseer|cora|emails|dblp|"
                        "wiki"},
          {"scale", "synthetic dataset size multiplier (default 0.2)"},
          {"levels", "pooling levels (default 3)"},
          {"hidden", "hidden width (default 64)"},
          {"epochs", "training epoch budget (default 200)"},
          {"lr", "Adam learning rate (default 0.01)"},
          {"seed", "RNG seed for init/splits/synthetic data (default 1)"},
          {"threads", "kernel worker threads (default: ADAMGNN_NUM_THREADS "
                      "env\nor hardware concurrency). Results are "
                      "bitwise-identical\nat every thread count."},
          {"isa", "scalar|sse2|avx2: force the SIMD kernel backend "
                  "(default:\nADAMGNN_ISA env or best the CPU supports). "
                  "Exits 2 if the\nCPU cannot run it. At a fixed ISA "
                  "results are\nbitwise-reproducible; across ISAs dense "
                  "matmuls may\ndiffer by a few ULPs (avx2 FMA)."},
          {"save", "write the final weights as a checkpoint loadable by\n"
                   "adamgnn_infer --load"},
          {"checkpoint", "crash-safe resumable checkpoint file (parameters "
                         "+\nAdam moments + RNG + epoch bookkeeping, "
                         "atomic writes)"},
          {"checkpoint-every", "also save every N epochs (default 10; the "
                               "end of the\nrun always saves)"},
          {"resume", "continue from --checkpoint if it exists; reproduces\n"
                     "the uninterrupted run bitwise at the same seed and\n"
                     "threads"},
          {"dump-predictions", "(nc only) write every node's final argmax "
                               "class as\n`node<TAB>class` lines, "
                               "comparable with adamgnn_infer\noutput"},
          {"print-config", "print the resolved effective configuration\n"
                           "(threads, ISA, obs state, training params) as "
                           "one JSON\nline on stdout and exit 0"},
          {"metrics-out", "write run telemetry (epoch/phase timings, pool "
                          "and\nworkspace stats, trace spans) as JSONL; "
                          "\"-\" means\nstdout. The ADAMGNN_METRICS env "
                          "var is the fallback\nwhen the flag is absent."},
      };
  return *kSpecs;
}

// Prints resume provenance and any divergence recoveries for a finished run.
void ReportResilience(int resumed_from_epoch,
                      const std::vector<nn::RecoveryEvent>& events) {
  if (resumed_from_epoch >= 0) {
    std::printf("resumed from epoch %d\n", resumed_from_epoch);
  }
  for (const nn::RecoveryEvent& e : events) {
    std::printf("recovery: epoch %lld %s, rolled back, lr %.6g -> %.6g\n",
                static_cast<long long>(e.epoch),
                nn::RecoveryKindToString(e.kind), e.lr_before, e.lr_after);
  }
}

int RunNodeClassification(const graph::Graph& g,
                          const std::map<std::string, std::string>& flags,
                          const core::AdamGnnConfig& base_config,
                          const train::TrainConfig& tc, util::Rng* rng) {
  if (!g.has_labels()) {
    std::fprintf(stderr, "node classification requires --labels\n");
    return 2;
  }
  core::AdamGnnConfig config = base_config;
  config.num_classes = static_cast<size_t>(g.num_classes());
  core::AdamGnnNodeModel model(config, rng);

  data::IndexSplit split =
      data::SplitIndices(g.num_nodes(), 0.8, 0.1, rng).ValueOrDie();
  auto train_result = train::TrainNodeClassifier(&model, g, split, tc);
  if (!train_result.ok()) {
    std::fprintf(stderr, "%s\n", train_result.status().ToString().c_str());
    return 1;
  }
  train::NodeTaskResult result = std::move(train_result).ValueOrDie();
  ReportResilience(result.resumed_from_epoch, result.recovery_events);
  std::printf("val accuracy  %.4f\ntest accuracy %.4f (epoch %d of %d)\n",
              result.val_accuracy, result.test_accuracy, result.best_epoch,
              result.epochs_run);

  // Detailed test-set report, through the tape-free serving path (bitwise
  // identical to the eval-mode training forward at these weights).
  util::Rng eval_rng(tc.seed);
  auto out = model.Evaluate(g, &eval_rng);
  std::vector<int> predicted, truth;
  std::vector<int> all_pred = autograd::ArgmaxRows(out.logits.value());
  for (size_t r : split.test) {
    predicted.push_back(all_pred[r]);
    truth.push_back(g.labels()[r]);
  }
  auto confusion = train::ConfusionMatrix::FromPredictions(
                       predicted, truth, g.num_classes())
                       .ValueOrDie();
  std::printf("macro-F1      %.4f\nconfusion matrix (test):\n%s",
              confusion.MacroF1(), confusion.ToString().c_str());

  const std::string dump = FlagOr(flags, "dump-predictions", "");
  if (!dump.empty()) {
    std::FILE* f = std::fopen(dump.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", dump.c_str());
      return 1;
    }
    for (size_t i = 0; i < all_pred.size(); ++i) {
      std::fprintf(f, "%zu\t%d\n", i, all_pred[i]);
    }
    std::fclose(f);
    std::printf("predictions written to %s\n", dump.c_str());
  }

  const std::string save = FlagOr(flags, "save", "");
  if (!save.empty()) {
    nn::SaveParameters(model.Parameters(), save).CheckOK();
    std::printf("checkpoint written to %s\n", save.c_str());
  }
  return 0;
}

int RunLinkPrediction(const graph::Graph& g,
                      const std::map<std::string, std::string>& flags,
                      const core::AdamGnnConfig& config,
                      const train::TrainConfig& tc, util::Rng* rng) {
  data::LinkSplit split = data::MakeLinkSplit(g, 0.1, 0.1, rng).ValueOrDie();
  core::AdamGnnEmbeddingModel model(config, rng);
  auto train_result = train::TrainLinkPredictor(&model, split, tc);
  if (!train_result.ok()) {
    std::fprintf(stderr, "%s\n", train_result.status().ToString().c_str());
    return 1;
  }
  train::LinkTaskResult result = std::move(train_result).ValueOrDie();
  ReportResilience(result.resumed_from_epoch, result.recovery_events);
  std::printf("val ROC-AUC  %.4f\ntest ROC-AUC %.4f (epoch %d of %d)\n",
              result.val_auc, result.test_auc, result.best_epoch,
              result.epochs_run);
  const std::string save = FlagOr(flags, "save", "");
  if (!save.empty()) {
    nn::SaveParameters(model.Parameters(), save).CheckOK();
    std::printf("checkpoint written to %s\n", save.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = cli::ParseFlags(argc, argv, cli::FlagNames(Specs()));
  if (flags.count("help") > 0) {
    std::printf(
        "usage: adamgnn_train --task=nc|lp (--edges=F [--features=F] "
        "[--labels=F] | --synthetic=acm|citeseer|cora|emails|dblp|wiki "
        "[--scale=S]) [flags...]\n"
        "flags:\n");
    cli::PrintFlagHelp(Specs());
    return 0;
  }
  cli::ConfigureThreadsOrDie(flags);
  cli::ConfigureIsaOrDie(flags);
  if (flags.count("print-config") > 0) {
    cli::PrintEffectiveConfig(
        "adamgnn_train",
        {{"task", cli::JsonQuote(cli::FlagOr(flags, "task", "nc"))},
         {"epochs", cli::FlagOr(flags, "epochs", "200")},
         {"lr", cli::FlagOr(flags, "lr", "0.01")},
         {"seed", cli::FlagOr(flags, "seed", cli::kDefaultSeed)},
         {"hidden", cli::FlagOr(flags, "hidden", cli::kDefaultHidden)},
         {"levels", cli::FlagOr(flags, "levels", cli::kDefaultLevels)},
         {"checkpoint_every",
          cli::FlagOr(flags, "checkpoint-every", "10")},
         {"resume", flags.count("resume") > 0 ? "true" : "false"}});
    return 0;
  }
  std::printf("kernel threads: %d\n", util::NumThreads());
  std::printf("kernel isa: %s (best supported: %s)\n",
              tensor::IsaName(tensor::ActiveIsa()),
              tensor::IsaName(tensor::BestSupportedIsa()));
  const std::string task = FlagOr(flags, "task", "nc");

  auto graph_result = cli::LoadInput(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 2;
  }
  graph::Graph g = std::move(graph_result).ValueOrDie();
  if (!g.has_features()) {
    std::fprintf(stderr, "input graph has no node features\n");
    return 2;
  }
  std::printf("loaded %s\n", g.DebugString().c_str());

  core::AdamGnnConfig config;
  config.in_dim = g.feature_dim();
  config.hidden_dim = static_cast<size_t>(
      cli::IntFlagOr(flags, "hidden", cli::kDefaultHidden));
  config.num_levels = static_cast<int>(
      cli::IntFlagOr(flags, "levels", cli::kDefaultLevels));

  train::TrainConfig tc;
  tc.max_epochs = static_cast<int>(cli::IntFlagOr(flags, "epochs", "200"));
  tc.patience = tc.max_epochs / 3 + 5;
  tc.learning_rate = cli::DoubleFlagOr(flags, "lr", "0.01");
  tc.seed = static_cast<uint64_t>(
      cli::IntFlagOr(flags, "seed", cli::kDefaultSeed));
  tc.checkpoint_path = FlagOr(flags, "checkpoint", "");
  tc.checkpoint_every =
      static_cast<int>(cli::IntFlagOr(flags, "checkpoint-every", "10"));
  tc.resume = flags.count("resume") > 0;
  if (tc.resume && tc.checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint=PATH\n");
    return 2;
  }
  if (tc.checkpoint_every < 0) {
    std::fprintf(stderr, "--checkpoint-every must be >= 0\n");
    return 2;
  }

  util::Rng rng(tc.seed);
  int rc = 2;
  if (task == "nc") {
    rc = RunNodeClassification(g, flags, config, tc, &rng);
  } else if (task == "lp") {
    rc = RunLinkPrediction(g, flags, config, tc, &rng);
  } else {
    std::fprintf(stderr, "unknown --task=%s (expected nc or lp)\n",
                 task.c_str());
    return 2;
  }
  cli::DumpMetricsOrDie(flags);
  return rc;
}
