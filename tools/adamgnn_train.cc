// adamgnn_train — command-line trainer for AdamGNN on user-provided graphs.
//
// Usage:
//   adamgnn_train --task=nc --edges=g.txt --features=x.txt --labels=y.txt
//                 [--levels=3] [--hidden=64] [--epochs=200] [--lr=0.01]
//                 [--seed=1] [--threads=N] [--save=model.ckpt]
//                 [--checkpoint=run.ckpt] [--checkpoint-every=10] [--resume]
//   adamgnn_train --task=lp --edges=g.txt --features=x.txt [...]
//   adamgnn_train --task=nc --synthetic=cora [--scale=0.2] [...]
//
// Node classification reports test accuracy, macro-F1 and the confusion
// matrix; link prediction reports ROC-AUC. `--save` writes a checkpoint
// loadable with nn::LoadParameters. `--checkpoint` makes the run crash-safe:
// a resumable checkpoint (parameters + optimizer + RNG + bookkeeping) is
// written atomically every --checkpoint-every epochs and at the end;
// `--resume` continues an interrupted run bitwise-identically.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "autograd/loss_ops.h"
#include "core/adapters.h"
#include "data/splits.h"
#include "nn/serialize.h"
#include "tools/cli_common.h"
#include "train/evaluation.h"
#include "train/link_trainer.h"
#include "train/node_trainer.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace {

using namespace adamgnn;  // CLI tool; library code never does this
using cli::FlagOr;

// Every flag the tool understands. Anything else — including a typo like
// --epoch=5 — is rejected instead of silently ignored.
const std::set<std::string>& KnownFlags() {
  static const std::set<std::string>* kKnown = new std::set<std::string>{
      "help",       "task",    "edges",   "features",
      "labels",     "synthetic", "scale", "levels",
      "hidden",     "epochs",  "lr",      "seed",
      "threads",    "isa",     "save",    "checkpoint",
      "checkpoint-every",      "resume",  "dump-predictions",
      "metrics-out",
  };
  return *kKnown;
}

// Prints resume provenance and any divergence recoveries for a finished run.
void ReportResilience(int resumed_from_epoch,
                      const std::vector<nn::RecoveryEvent>& events) {
  if (resumed_from_epoch >= 0) {
    std::printf("resumed from epoch %d\n", resumed_from_epoch);
  }
  for (const nn::RecoveryEvent& e : events) {
    std::printf("recovery: epoch %lld %s, rolled back, lr %.6g -> %.6g\n",
                static_cast<long long>(e.epoch),
                nn::RecoveryKindToString(e.kind), e.lr_before, e.lr_after);
  }
}

int RunNodeClassification(const graph::Graph& g,
                          const std::map<std::string, std::string>& flags,
                          const core::AdamGnnConfig& base_config,
                          const train::TrainConfig& tc, util::Rng* rng) {
  if (!g.has_labels()) {
    std::fprintf(stderr, "node classification requires --labels\n");
    return 2;
  }
  core::AdamGnnConfig config = base_config;
  config.num_classes = static_cast<size_t>(g.num_classes());
  core::AdamGnnNodeModel model(config, rng);

  data::IndexSplit split =
      data::SplitIndices(g.num_nodes(), 0.8, 0.1, rng).ValueOrDie();
  auto train_result = train::TrainNodeClassifier(&model, g, split, tc);
  if (!train_result.ok()) {
    std::fprintf(stderr, "%s\n", train_result.status().ToString().c_str());
    return 1;
  }
  train::NodeTaskResult result = std::move(train_result).ValueOrDie();
  ReportResilience(result.resumed_from_epoch, result.recovery_events);
  std::printf("val accuracy  %.4f\ntest accuracy %.4f (epoch %d of %d)\n",
              result.val_accuracy, result.test_accuracy, result.best_epoch,
              result.epochs_run);

  // Detailed test-set report, through the tape-free serving path (bitwise
  // identical to the eval-mode training forward at these weights).
  util::Rng eval_rng(tc.seed);
  auto out = model.Evaluate(g, &eval_rng);
  std::vector<int> predicted, truth;
  std::vector<int> all_pred = autograd::ArgmaxRows(out.logits.value());
  for (size_t r : split.test) {
    predicted.push_back(all_pred[r]);
    truth.push_back(g.labels()[r]);
  }
  auto confusion = train::ConfusionMatrix::FromPredictions(
                       predicted, truth, g.num_classes())
                       .ValueOrDie();
  std::printf("macro-F1      %.4f\nconfusion matrix (test):\n%s",
              confusion.MacroF1(), confusion.ToString().c_str());

  const std::string dump = FlagOr(flags, "dump-predictions", "");
  if (!dump.empty()) {
    std::FILE* f = std::fopen(dump.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", dump.c_str());
      return 1;
    }
    for (size_t i = 0; i < all_pred.size(); ++i) {
      std::fprintf(f, "%zu\t%d\n", i, all_pred[i]);
    }
    std::fclose(f);
    std::printf("predictions written to %s\n", dump.c_str());
  }

  const std::string save = FlagOr(flags, "save", "");
  if (!save.empty()) {
    nn::SaveParameters(model.Parameters(), save).CheckOK();
    std::printf("checkpoint written to %s\n", save.c_str());
  }
  return 0;
}

int RunLinkPrediction(const graph::Graph& g,
                      const std::map<std::string, std::string>& flags,
                      const core::AdamGnnConfig& config,
                      const train::TrainConfig& tc, util::Rng* rng) {
  data::LinkSplit split = data::MakeLinkSplit(g, 0.1, 0.1, rng).ValueOrDie();
  core::AdamGnnEmbeddingModel model(config, rng);
  auto train_result = train::TrainLinkPredictor(&model, split, tc);
  if (!train_result.ok()) {
    std::fprintf(stderr, "%s\n", train_result.status().ToString().c_str());
    return 1;
  }
  train::LinkTaskResult result = std::move(train_result).ValueOrDie();
  ReportResilience(result.resumed_from_epoch, result.recovery_events);
  std::printf("val ROC-AUC  %.4f\ntest ROC-AUC %.4f (epoch %d of %d)\n",
              result.val_auc, result.test_auc, result.best_epoch,
              result.epochs_run);
  const std::string save = FlagOr(flags, "save", "");
  if (!save.empty()) {
    nn::SaveParameters(model.Parameters(), save).CheckOK();
    std::printf("checkpoint written to %s\n", save.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = cli::ParseFlags(argc, argv, KnownFlags());
  if (flags.count("help") > 0) {
    std::printf(
        "usage: adamgnn_train --task=nc|lp (--edges=F [--features=F] "
        "[--labels=F] | --synthetic=acm|citeseer|cora|emails|dblp|wiki "
        "[--scale=S]) [--levels=K] [--hidden=D] [--epochs=N] [--lr=R] "
        "[--seed=S] [--threads=N] [--save=PATH] [--dump-predictions=PATH] "
        "[--checkpoint=PATH] [--checkpoint-every=N] [--resume]\n"
        "  --dump-predictions=PATH  (nc only) write every node's final\n"
        "                           argmax class as `node<TAB>class` lines,\n"
        "                           comparable with adamgnn_infer output\n"
        "  --threads=N  kernel worker threads (default: ADAMGNN_NUM_THREADS\n"
        "               env or hardware concurrency). Results are\n"
        "               bitwise-identical at every thread count.\n"
        "  --isa=scalar|sse2|avx2  force the SIMD kernel backend (default:\n"
        "               ADAMGNN_ISA env or best the CPU supports). Exits 2\n"
        "               if the CPU cannot run the requested ISA. At a fixed\n"
        "               ISA results are bitwise-reproducible; across ISAs\n"
        "               dense matmuls may differ by a few ULPs (avx2 FMA).\n"
        "  --checkpoint=PATH        crash-safe resumable checkpoint file\n"
        "                           (parameters + Adam moments + RNG +\n"
        "                           epoch bookkeeping, atomic writes)\n"
        "  --checkpoint-every=N     also save every N epochs (default 10;\n"
        "                           the end of the run always saves)\n"
        "  --resume                 continue from --checkpoint if it exists;\n"
        "                           reproduces the uninterrupted run\n"
        "                           bitwise at the same seed and threads\n"
        "  --metrics-out=FILE       write run telemetry (epoch/phase\n"
        "                           timings, pool and workspace stats, trace\n"
        "                           spans) as JSONL; \"-\" means stdout. The\n"
        "                           ADAMGNN_METRICS env var is the fallback\n"
        "                           when the flag is absent.\n");
    return 0;
  }
  cli::ConfigureThreadsOrDie(flags);
  cli::ConfigureIsaOrDie(flags);
  std::printf("kernel threads: %d\n", util::NumThreads());
  std::printf("kernel isa: %s (best supported: %s)\n",
              tensor::IsaName(tensor::ActiveIsa()),
              tensor::IsaName(tensor::BestSupportedIsa()));
  const std::string task = FlagOr(flags, "task", "nc");

  auto graph_result = cli::LoadInput(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 2;
  }
  graph::Graph g = std::move(graph_result).ValueOrDie();
  if (!g.has_features()) {
    std::fprintf(stderr, "input graph has no node features\n");
    return 2;
  }
  std::printf("loaded %s\n", g.DebugString().c_str());

  core::AdamGnnConfig config;
  config.in_dim = g.feature_dim();
  config.hidden_dim = static_cast<size_t>(
      cli::IntFlagOr(flags, "hidden", cli::kDefaultHidden));
  config.num_levels = static_cast<int>(
      cli::IntFlagOr(flags, "levels", cli::kDefaultLevels));

  train::TrainConfig tc;
  tc.max_epochs = static_cast<int>(cli::IntFlagOr(flags, "epochs", "200"));
  tc.patience = tc.max_epochs / 3 + 5;
  tc.learning_rate = cli::DoubleFlagOr(flags, "lr", "0.01");
  tc.seed = static_cast<uint64_t>(
      cli::IntFlagOr(flags, "seed", cli::kDefaultSeed));
  tc.checkpoint_path = FlagOr(flags, "checkpoint", "");
  tc.checkpoint_every =
      static_cast<int>(cli::IntFlagOr(flags, "checkpoint-every", "10"));
  tc.resume = flags.count("resume") > 0;
  if (tc.resume && tc.checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint=PATH\n");
    return 2;
  }
  if (tc.checkpoint_every < 0) {
    std::fprintf(stderr, "--checkpoint-every must be >= 0\n");
    return 2;
  }

  util::Rng rng(tc.seed);
  int rc = 2;
  if (task == "nc") {
    rc = RunNodeClassification(g, flags, config, tc, &rng);
  } else if (task == "lp") {
    rc = RunLinkPrediction(g, flags, config, tc, &rng);
  } else {
    std::fprintf(stderr, "unknown --task=%s (expected nc or lp)\n",
                 task.c_str());
    return 2;
  }
  cli::DumpMetricsOrDie(flags);
  return rc;
}
