# Empty compiler generated dependencies file for fitness_test.
# This may be replaced when dependencies are built.
