file(REMOVE_RECURSE
  "CMakeFiles/fitness_test.dir/fitness_test.cc.o"
  "CMakeFiles/fitness_test.dir/fitness_test.cc.o.d"
  "fitness_test"
  "fitness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fitness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
