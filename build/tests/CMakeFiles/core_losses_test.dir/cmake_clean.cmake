file(REMOVE_RECURSE
  "CMakeFiles/core_losses_test.dir/core_losses_test.cc.o"
  "CMakeFiles/core_losses_test.dir/core_losses_test.cc.o.d"
  "core_losses_test"
  "core_losses_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_losses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
