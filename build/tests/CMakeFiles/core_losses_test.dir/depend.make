# Empty dependencies file for core_losses_test.
# This may be replaced when dependencies are built.
