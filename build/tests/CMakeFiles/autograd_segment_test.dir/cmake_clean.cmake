file(REMOVE_RECURSE
  "CMakeFiles/autograd_segment_test.dir/autograd_segment_test.cc.o"
  "CMakeFiles/autograd_segment_test.dir/autograd_segment_test.cc.o.d"
  "autograd_segment_test"
  "autograd_segment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
