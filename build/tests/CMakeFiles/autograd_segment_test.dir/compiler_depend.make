# Empty compiler generated dependencies file for autograd_segment_test.
# This may be replaced when dependencies are built.
