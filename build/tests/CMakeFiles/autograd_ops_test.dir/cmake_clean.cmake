file(REMOVE_RECURSE
  "CMakeFiles/autograd_ops_test.dir/autograd_ops_test.cc.o"
  "CMakeFiles/autograd_ops_test.dir/autograd_ops_test.cc.o.d"
  "autograd_ops_test"
  "autograd_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
