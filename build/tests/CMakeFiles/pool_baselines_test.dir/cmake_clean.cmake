file(REMOVE_RECURSE
  "CMakeFiles/pool_baselines_test.dir/pool_baselines_test.cc.o"
  "CMakeFiles/pool_baselines_test.dir/pool_baselines_test.cc.o.d"
  "pool_baselines_test"
  "pool_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
