# Empty dependencies file for pool_baselines_test.
# This may be replaced when dependencies are built.
