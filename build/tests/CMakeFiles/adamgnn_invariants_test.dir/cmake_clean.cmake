file(REMOVE_RECURSE
  "CMakeFiles/adamgnn_invariants_test.dir/adamgnn_invariants_test.cc.o"
  "CMakeFiles/adamgnn_invariants_test.dir/adamgnn_invariants_test.cc.o.d"
  "adamgnn_invariants_test"
  "adamgnn_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamgnn_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
