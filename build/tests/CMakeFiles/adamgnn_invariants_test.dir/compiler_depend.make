# Empty compiler generated dependencies file for adamgnn_invariants_test.
# This may be replaced when dependencies are built.
