file(REMOVE_RECURSE
  "CMakeFiles/adamgnn_model_test.dir/adamgnn_model_test.cc.o"
  "CMakeFiles/adamgnn_model_test.dir/adamgnn_model_test.cc.o.d"
  "adamgnn_model_test"
  "adamgnn_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamgnn_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
