# Empty compiler generated dependencies file for adamgnn_model_test.
# This may be replaced when dependencies are built.
