file(REMOVE_RECURSE
  "CMakeFiles/autograd_sparse_test.dir/autograd_sparse_test.cc.o"
  "CMakeFiles/autograd_sparse_test.dir/autograd_sparse_test.cc.o.d"
  "autograd_sparse_test"
  "autograd_sparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
