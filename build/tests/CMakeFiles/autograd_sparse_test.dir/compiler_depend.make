# Empty compiler generated dependencies file for autograd_sparse_test.
# This may be replaced when dependencies are built.
