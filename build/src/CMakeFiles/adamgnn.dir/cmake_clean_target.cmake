file(REMOVE_RECURSE
  "libadamgnn.a"
)
