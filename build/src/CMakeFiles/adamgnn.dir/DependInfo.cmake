
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/loss_ops.cc" "src/CMakeFiles/adamgnn.dir/autograd/loss_ops.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/autograd/loss_ops.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/adamgnn.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/segment_ops.cc" "src/CMakeFiles/adamgnn.dir/autograd/segment_ops.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/autograd/segment_ops.cc.o.d"
  "/root/repo/src/autograd/sparse_ops.cc" "src/CMakeFiles/adamgnn.dir/autograd/sparse_ops.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/autograd/sparse_ops.cc.o.d"
  "/root/repo/src/autograd/tape.cc" "src/CMakeFiles/adamgnn.dir/autograd/tape.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/autograd/tape.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/adamgnn.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/autograd/variable.cc.o.d"
  "/root/repo/src/core/adamgnn_model.cc" "src/CMakeFiles/adamgnn.dir/core/adamgnn_model.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/adamgnn_model.cc.o.d"
  "/root/repo/src/core/adapters.cc" "src/CMakeFiles/adamgnn.dir/core/adapters.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/adapters.cc.o.d"
  "/root/repo/src/core/assignment.cc" "src/CMakeFiles/adamgnn.dir/core/assignment.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/assignment.cc.o.d"
  "/root/repo/src/core/ego_selection.cc" "src/CMakeFiles/adamgnn.dir/core/ego_selection.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/ego_selection.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/adamgnn.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/explain.cc.o.d"
  "/root/repo/src/core/fitness.cc" "src/CMakeFiles/adamgnn.dir/core/fitness.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/fitness.cc.o.d"
  "/root/repo/src/core/flyback.cc" "src/CMakeFiles/adamgnn.dir/core/flyback.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/flyback.cc.o.d"
  "/root/repo/src/core/hetero.cc" "src/CMakeFiles/adamgnn.dir/core/hetero.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/hetero.cc.o.d"
  "/root/repo/src/core/hyper_features.cc" "src/CMakeFiles/adamgnn.dir/core/hyper_features.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/hyper_features.cc.o.d"
  "/root/repo/src/core/losses.cc" "src/CMakeFiles/adamgnn.dir/core/losses.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/losses.cc.o.d"
  "/root/repo/src/core/unpooling.cc" "src/CMakeFiles/adamgnn.dir/core/unpooling.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/core/unpooling.cc.o.d"
  "/root/repo/src/data/features.cc" "src/CMakeFiles/adamgnn.dir/data/features.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/data/features.cc.o.d"
  "/root/repo/src/data/graph_datasets.cc" "src/CMakeFiles/adamgnn.dir/data/graph_datasets.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/data/graph_datasets.cc.o.d"
  "/root/repo/src/data/hetero.cc" "src/CMakeFiles/adamgnn.dir/data/hetero.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/data/hetero.cc.o.d"
  "/root/repo/src/data/node_datasets.cc" "src/CMakeFiles/adamgnn.dir/data/node_datasets.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/data/node_datasets.cc.o.d"
  "/root/repo/src/data/sbm.cc" "src/CMakeFiles/adamgnn.dir/data/sbm.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/data/sbm.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/CMakeFiles/adamgnn.dir/data/splits.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/data/splits.cc.o.d"
  "/root/repo/src/graph/batch.cc" "src/CMakeFiles/adamgnn.dir/graph/batch.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/graph/batch.cc.o.d"
  "/root/repo/src/graph/builder.cc" "src/CMakeFiles/adamgnn.dir/graph/builder.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/graph/builder.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/adamgnn.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/adamgnn.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/adamgnn.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/sparse_matrix.cc" "src/CMakeFiles/adamgnn.dir/graph/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/graph/sparse_matrix.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/adamgnn.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/graph/traversal.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/adamgnn.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/gat_conv.cc" "src/CMakeFiles/adamgnn.dir/nn/gat_conv.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/gat_conv.cc.o.d"
  "/root/repo/src/nn/gcn_conv.cc" "src/CMakeFiles/adamgnn.dir/nn/gcn_conv.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/gcn_conv.cc.o.d"
  "/root/repo/src/nn/gin_conv.cc" "src/CMakeFiles/adamgnn.dir/nn/gin_conv.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/gin_conv.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/adamgnn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/adamgnn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/adamgnn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/adamgnn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/sage_conv.cc" "src/CMakeFiles/adamgnn.dir/nn/sage_conv.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/sage_conv.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/adamgnn.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/nn/serialize.cc.o.d"
  "/root/repo/src/pool/common.cc" "src/CMakeFiles/adamgnn.dir/pool/common.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/pool/common.cc.o.d"
  "/root/repo/src/pool/diff_pool.cc" "src/CMakeFiles/adamgnn.dir/pool/diff_pool.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/pool/diff_pool.cc.o.d"
  "/root/repo/src/pool/flat_models.cc" "src/CMakeFiles/adamgnn.dir/pool/flat_models.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/pool/flat_models.cc.o.d"
  "/root/repo/src/pool/sag_pool.cc" "src/CMakeFiles/adamgnn.dir/pool/sag_pool.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/pool/sag_pool.cc.o.d"
  "/root/repo/src/pool/sort_pool.cc" "src/CMakeFiles/adamgnn.dir/pool/sort_pool.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/pool/sort_pool.cc.o.d"
  "/root/repo/src/pool/struct_pool.cc" "src/CMakeFiles/adamgnn.dir/pool/struct_pool.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/pool/struct_pool.cc.o.d"
  "/root/repo/src/pool/topk_pool.cc" "src/CMakeFiles/adamgnn.dir/pool/topk_pool.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/pool/topk_pool.cc.o.d"
  "/root/repo/src/pool/wl_gnn.cc" "src/CMakeFiles/adamgnn.dir/pool/wl_gnn.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/pool/wl_gnn.cc.o.d"
  "/root/repo/src/tensor/kernels.cc" "src/CMakeFiles/adamgnn.dir/tensor/kernels.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/tensor/kernels.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/adamgnn.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/train/clustering.cc" "src/CMakeFiles/adamgnn.dir/train/clustering.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/train/clustering.cc.o.d"
  "/root/repo/src/train/cross_validation.cc" "src/CMakeFiles/adamgnn.dir/train/cross_validation.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/train/cross_validation.cc.o.d"
  "/root/repo/src/train/evaluation.cc" "src/CMakeFiles/adamgnn.dir/train/evaluation.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/train/evaluation.cc.o.d"
  "/root/repo/src/train/graph_trainer.cc" "src/CMakeFiles/adamgnn.dir/train/graph_trainer.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/train/graph_trainer.cc.o.d"
  "/root/repo/src/train/link_trainer.cc" "src/CMakeFiles/adamgnn.dir/train/link_trainer.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/train/link_trainer.cc.o.d"
  "/root/repo/src/train/metrics.cc" "src/CMakeFiles/adamgnn.dir/train/metrics.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/train/metrics.cc.o.d"
  "/root/repo/src/train/node_trainer.cc" "src/CMakeFiles/adamgnn.dir/train/node_trainer.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/train/node_trainer.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/adamgnn.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/adamgnn.dir/util/random.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/adamgnn.dir/util/status.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/adamgnn.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/adamgnn.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/adamgnn.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
