# Empty compiler generated dependencies file for adamgnn.
# This may be replaced when dependencies are built.
