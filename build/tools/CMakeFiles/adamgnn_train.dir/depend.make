# Empty dependencies file for adamgnn_train.
# This may be replaced when dependencies are built.
