file(REMOVE_RECURSE
  "CMakeFiles/adamgnn_train.dir/adamgnn_train.cc.o"
  "CMakeFiles/adamgnn_train.dir/adamgnn_train.cc.o.d"
  "adamgnn_train"
  "adamgnn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamgnn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
