file(REMOVE_RECURSE
  "CMakeFiles/molecule_graph_classification.dir/molecule_graph_classification.cpp.o"
  "CMakeFiles/molecule_graph_classification.dir/molecule_graph_classification.cpp.o.d"
  "molecule_graph_classification"
  "molecule_graph_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_graph_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
