# Empty compiler generated dependencies file for molecule_graph_classification.
# This may be replaced when dependencies are built.
