file(REMOVE_RECURSE
  "CMakeFiles/node_clustering.dir/node_clustering.cpp.o"
  "CMakeFiles/node_clustering.dir/node_clustering.cpp.o.d"
  "node_clustering"
  "node_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
