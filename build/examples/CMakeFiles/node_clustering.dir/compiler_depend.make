# Empty compiler generated dependencies file for node_clustering.
# This may be replaced when dependencies are built.
