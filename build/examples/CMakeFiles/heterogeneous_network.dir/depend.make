# Empty dependencies file for heterogeneous_network.
# This may be replaced when dependencies are built.
