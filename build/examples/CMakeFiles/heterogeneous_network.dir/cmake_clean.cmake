file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_network.dir/heterogeneous_network.cpp.o"
  "CMakeFiles/heterogeneous_network.dir/heterogeneous_network.cpp.o.d"
  "heterogeneous_network"
  "heterogeneous_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
