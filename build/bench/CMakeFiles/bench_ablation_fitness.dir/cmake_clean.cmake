file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fitness.dir/bench_ablation_fitness.cc.o"
  "CMakeFiles/bench_ablation_fitness.dir/bench_ablation_fitness.cc.o.d"
  "bench_ablation_fitness"
  "bench_ablation_fitness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fitness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
