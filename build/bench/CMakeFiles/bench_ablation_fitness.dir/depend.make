# Empty dependencies file for bench_ablation_fitness.
# This may be replaced when dependencies are built.
