file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_levels.dir/bench_table8_levels.cc.o"
  "CMakeFiles/bench_table8_levels.dir/bench_table8_levels.cc.o.d"
  "bench_table8_levels"
  "bench_table8_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
