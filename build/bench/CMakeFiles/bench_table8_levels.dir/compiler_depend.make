# Empty compiler generated dependencies file for bench_table8_levels.
# This may be replaced when dependencies are built.
