file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_topk_coverage.dir/bench_fig3_topk_coverage.cc.o"
  "CMakeFiles/bench_fig3_topk_coverage.dir/bench_fig3_topk_coverage.cc.o.d"
  "bench_fig3_topk_coverage"
  "bench_fig3_topk_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_topk_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
