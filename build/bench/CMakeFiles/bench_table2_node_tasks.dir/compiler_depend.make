# Empty compiler generated dependencies file for bench_table2_node_tasks.
# This may be replaced when dependencies are built.
