file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_node_tasks.dir/bench_table2_node_tasks.cc.o"
  "CMakeFiles/bench_table2_node_tasks.dir/bench_table2_node_tasks.cc.o.d"
  "bench_table2_node_tasks"
  "bench_table2_node_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_node_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
