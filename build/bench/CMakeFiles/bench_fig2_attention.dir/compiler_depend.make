# Empty compiler generated dependencies file for bench_fig2_attention.
# This may be replaced when dependencies are built.
